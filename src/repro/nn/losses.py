"""Loss functions used by the four evaluation benchmarks.

* ``classify``                    — cross entropy (ResNet34 on CIFAR-like)
* ``em_denoise``/``optical_damage`` — mean squared error
* ``slstr_cloud``                 — per-pixel binary cross entropy
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F
import repro.tensor as rt


class CrossEntropyLoss(Module):
    """Softmax cross entropy over logits with integer class labels."""

    def forward(self, logits: Tensor, labels) -> Tensor:
        labels = np.asarray(labels.data if isinstance(labels, Tensor) else labels)
        logp = F.log_softmax(logits, axis=-1)
        onehot = F.one_hot(labels.astype(np.int64), logits.shape[-1])
        return -(logp * onehot).sum(axis=-1).mean()


class MSELoss(Module):
    def forward(self, pred: Tensor, target) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        diff = pred - target
        return (diff * diff).mean()


class BCEWithLogitsLoss(Module):
    """Numerically-stable sigmoid + binary cross entropy.

    Uses the identity ``bce(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """

    def forward(self, logits: Tensor, target) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        zeros = Tensor(np.zeros(1, dtype=np.float32))
        loss = rt.maximum(logits, zeros) - logits * target + rt.log(
            1.0 + rt.exp(-rt.abs(logits))
        )
        return loss.mean()
