"""ResNet for the ``classify`` benchmark (Table 3: ResNet34 on 3x32x32).

CIFAR-style stem (3x3 conv, no initial maxpool).  ``width_mult`` scales
channel counts so the 30-epoch accuracy experiments can run at laptop
scale; ``width_mult=1.0`` is the paper-scale network.
"""

from __future__ import annotations

from repro.nn.layers import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Identity,
    Linear,
    ReLU,
)
from repro.nn.module import Module, ModuleList, Sequential
from repro.tensor import Tensor
from repro.tensor.random import Generator
import repro.tensor as rt


class BasicBlock(Module):
    """Two 3x3 convs with an identity (or 1x1-projected) shortcut."""

    def __init__(self, in_ch: int, out_ch: int, stride: int = 1, gen: Generator | None = None) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1, bias=False, gen=gen)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1, bias=False, gen=gen)
        self.bn2 = BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.shortcut = Sequential(
                Conv2d(in_ch, out_ch, 1, stride=stride, bias=False, gen=gen),
                BatchNorm2d(out_ch),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = rt.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return rt.relu(out + self.shortcut(x))


class ResNet(Module):
    """CIFAR-style ResNet with configurable stage depths and width."""

    def __init__(
        self,
        layers: tuple[int, int, int, int],
        num_classes: int = 10,
        in_channels: int = 3,
        width_mult: float = 1.0,
        gen: Generator | None = None,
    ) -> None:
        super().__init__()
        widths = [max(4, int(w * width_mult)) for w in (64, 128, 256, 512)]
        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, gen=gen)
        self.bn1 = BatchNorm2d(widths[0])
        self.stages = ModuleList()
        in_ch = widths[0]
        for stage, (depth, width) in enumerate(zip(layers, widths)):
            blocks = ModuleList()
            for b in range(depth):
                stride = 2 if (stage > 0 and b == 0) else 1
                blocks.append(BasicBlock(in_ch, width, stride=stride, gen=gen))
                in_ch = width
            self.stages.append(blocks)
        self.pool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        self.fc = Linear(in_ch, num_classes, gen=gen)

    def forward(self, x: Tensor) -> Tensor:
        out = rt.relu(self.bn1(self.conv1(x)))
        for stage in self.stages:
            for block in stage:
                out = block(out)
        return self.fc(self.flatten(self.pool(out)))


def resnet34(num_classes: int = 10, width_mult: float = 1.0, gen: Generator | None = None) -> ResNet:
    """The paper's classify network: (3, 4, 6, 3) basic blocks."""
    return ResNet((3, 4, 6, 3), num_classes=num_classes, width_mult=width_mult, gen=gen)


def resnet18(num_classes: int = 10, width_mult: float = 1.0, gen: Generator | None = None) -> ResNet:
    return ResNet((2, 2, 2, 2), num_classes=num_classes, width_mult=width_mult, gen=gen)
