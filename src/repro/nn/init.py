"""Weight initialisers (He/Glorot), seeded through a Generator."""

from __future__ import annotations

import numpy as np

from repro.tensor.random import Generator, default_generator


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape, gen: Generator | None = None) -> np.ndarray:
    """He-normal init for ReLU networks."""
    gen = gen or default_generator
    fan_in, _ = _fan_in_out(tuple(shape))
    std = np.sqrt(2.0 / fan_in)
    return (gen.rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape, gen: Generator | None = None) -> np.ndarray:
    """Glorot-uniform init for tanh/sigmoid networks."""
    gen = gen or default_generator
    fan_in, fan_out = _fan_in_out(tuple(shape))
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
