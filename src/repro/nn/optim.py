"""Optimisers: SGD (momentum/weight decay) and Adam.

Updates are performed in-place on the parameters' NumPy buffers so no
autograd history is created.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    def __init__(self, params, lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint support: slot buffers only — parameters are saved via the
    # module's own ``state_dict`` and positions must match across runs.
    def state_dict(self) -> dict:
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]


class SGD(Optimizer):
    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self._velocity is not None:
                v = self._velocity[i]
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def state_dict(self) -> dict:
        state = super().state_dict()
        if self._velocity is not None:
            state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if "velocity" in state:
            self._velocity = [v.copy() for v in state["velocity"]]


class Adam(Optimizer):
    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]
        self._t = state["t"]
