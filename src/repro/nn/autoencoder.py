"""Autoencoder for the ``optical_damage`` benchmark.

SciML-Bench's optical-damage task trains an autoencoder to reconstruct
*undamaged* laser-optics images; damaged optics then reconstruct poorly,
so high MSE flags damage.  Conv encoder to a compact bottleneck, deconv
decoder, sigmoid output in [0, 1].
"""

from __future__ import annotations

from repro.nn.layers import Conv2d, ConvTranspose2d, ReLU, Sigmoid
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor
from repro.tensor.random import Generator


class Autoencoder(Module):
    def __init__(
        self,
        in_channels: int = 1,
        base_channels: int = 8,
        depth: int = 3,
        gen: Generator | None = None,
    ) -> None:
        super().__init__()
        enc = []
        ch = in_channels
        width = base_channels
        for _ in range(depth):
            enc.append(Conv2d(ch, width, 3, stride=2, padding=1, gen=gen))
            enc.append(ReLU())
            ch, width = width, width * 2
        self.encoder = Sequential(*enc)
        dec = []
        for i in range(depth):
            out_ch = in_channels if i == depth - 1 else ch // 2
            dec.append(ConvTranspose2d(ch, out_ch, 4, stride=2, padding=1, gen=gen))
            dec.append(Sigmoid() if i == depth - 1 else ReLU())
            ch = out_ch
        self.decoder = Sequential(*dec)

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    def reconstruction_error(self, x: Tensor) -> Tensor:
        """Per-sample MSE — the damage score used at inference time."""
        rec = self.forward(x)
        diff = rec - x
        return (diff * diff).mean(axis=(1, 2, 3))
