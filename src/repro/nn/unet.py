"""UNet for the ``slstr_cloud`` benchmark (per-pixel cloud masking).

SciML-Bench's slstr_cloud task segments cloud pixels in 9-channel
Sentinel-3 SLSTR imagery.  Classic UNet: conv blocks + maxpool on the way
down, upsample + skip concatenation on the way up, 1-channel logit map
out (BCE-with-logits objective).
"""

from __future__ import annotations

import repro.tensor as rt
from repro.nn.layers import BatchNorm2d, Conv2d, MaxPool2d, ReLU, Upsample
from repro.nn.module import Module, ModuleList, Sequential
from repro.tensor import Tensor
from repro.tensor.random import Generator


def _double_conv(in_ch: int, out_ch: int, gen: Generator | None) -> Sequential:
    return Sequential(
        Conv2d(in_ch, out_ch, 3, padding=1, bias=False, gen=gen),
        BatchNorm2d(out_ch),
        ReLU(),
        Conv2d(out_ch, out_ch, 3, padding=1, bias=False, gen=gen),
        BatchNorm2d(out_ch),
        ReLU(),
    )


class UNet(Module):
    def __init__(
        self,
        in_channels: int = 9,
        out_channels: int = 1,
        base_channels: int = 16,
        depth: int = 3,
        gen: Generator | None = None,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError(f"UNet depth must be >= 1, got {depth}")
        self.depth = depth
        self.pool = MaxPool2d(2)
        self.up = Upsample(2)

        self.down_blocks = ModuleList()
        ch = in_channels
        width = base_channels
        for _ in range(depth):
            self.down_blocks.append(_double_conv(ch, width, gen))
            ch, width = width, width * 2
        self.bottleneck = _double_conv(ch, width, gen)

        self.up_blocks = ModuleList()
        for _ in range(depth):
            # input: upsampled (width) + skip (ch) channels
            self.up_blocks.append(_double_conv(width + ch, ch, gen))
            width, ch = ch, ch // 2
        self.head = Conv2d(base_channels, out_channels, 1, gen=gen)

    def forward(self, x: Tensor) -> Tensor:
        skips: list[Tensor] = []
        out = x
        for block in self.down_blocks:
            out = block(out)
            skips.append(out)
            out = self.pool(out)
        out = self.bottleneck(out)
        for block in self.up_blocks:
            skip = skips.pop()
            out = rt.concatenate([self.up(out), skip], axis=1)
            out = block(out)
        return self.head(out)
