"""Neural-network substrate: layers, losses, optimisers, and the paper's
four evaluation architectures (Table 3).

* ``classify``       — :func:`repro.nn.resnet.resnet34` on 3x32x32 images.
* ``em_denoise``     — :class:`repro.nn.encdec.DeepEncoderDecoder` on 1x256x256.
* ``optical_damage`` — :class:`repro.nn.autoencoder.Autoencoder` on 1x200x200.
* ``slstr_cloud``    — :class:`repro.nn.unet.UNet` on 9-channel inputs.

Every model takes a ``base_channels`` knob so the accuracy experiments can
run at laptop scale while keeping the paper's architecture shape; the
harness documents the full-scale setting per experiment.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn import init
from repro.nn.layers import (
    Linear,
    Conv2d,
    ConvTranspose2d,
    BatchNorm2d,
    MaxPool2d,
    AvgPool2d,
    AdaptiveAvgPool2d,
    Upsample,
    Flatten,
    ReLU,
    Sigmoid,
    Tanh,
    Identity,
    Dropout,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss, BCEWithLogitsLoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.resnet import ResNet, resnet34, resnet18
from repro.nn.encdec import DeepEncoderDecoder
from repro.nn.autoencoder import Autoencoder
from repro.nn.unet import UNet

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "init",
    "Linear",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Upsample",
    "Flatten",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "BCEWithLogitsLoss",
    "SGD",
    "Adam",
    "Optimizer",
    "ResNet",
    "resnet34",
    "resnet18",
    "DeepEncoderDecoder",
    "Autoencoder",
    "UNet",
]
