"""Standard layers built on :mod:`repro.tensor.functional`."""

from __future__ import annotations

import numpy as np

import repro.tensor as rt
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F
from repro.tensor.random import Generator, default_generator


class Linear(Module):
    def __init__(self, in_features: int, out_features: int, bias: bool = True, gen: Generator | None = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), gen))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        gen: Generator | None = None,
    ) -> None:
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), gen)
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class ConvTranspose2d(Module):
    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        output_padding: int = 0,
        bias: bool = True,
        gen: Generator | None = None,
    ) -> None:
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.output_padding = output_padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), gen).transpose(1, 0, 2, 3)
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            output_padding=self.output_padding,
        )


class BatchNorm2d(Module):
    """Batch normalisation with running statistics (NCHW)."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = ((x - mean) * (x - mean)).mean(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self._buffers["running_mean"] = (
                (1 - m) * self._buffers["running_mean"] + m * mean.data.reshape(-1)
            )
            self._buffers["running_var"] = (
                (1 - m) * self._buffers["running_var"] + m * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(1, -1, 1, 1))
            var = Tensor(self._buffers["running_var"].reshape(1, -1, 1, 1))
        x_hat = (x - mean) * (var + self.eps) ** -0.5
        return x_hat * self.weight.reshape(1, -1, 1, 1) + self.bias.reshape(1, -1, 1, 1)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Upsample(Module):
    def __init__(self, scale_factor: int = 2) -> None:
        super().__init__()
        self.scale_factor = scale_factor

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest(x, self.scale_factor)


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return rt.relu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return rt.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return rt.tanh(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, gen: Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.gen = gen or default_generator

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self.gen.rng.random(x.shape) >= self.p).astype(np.float32)
        return x * Tensor(keep / (1.0 - self.p))
