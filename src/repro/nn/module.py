"""``Module``/``Parameter`` base machinery (torch.nn.Module semantics)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    __slots__ = ()

    def __init__(self, data, dtype=None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class with recursive parameter discovery and train/eval modes."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Module):
                yield from value.named_modules(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{full}.{i}")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter and registered buffer."""
        out = {name: p.data.copy() for name, p in self.named_parameters()}
        for mod_name, mod in self.named_modules():
            for buf_name, buf in getattr(mod, "_buffers", {}).items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                out[key] = buf.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = {}
        for mod_name, mod in self.named_modules():
            for buf_name in getattr(mod, "_buffers", {}):
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                buffers[key] = (mod, buf_name)
        for name, value in state.items():
            if name in params:
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {params[name].shape} vs {value.shape}"
                    )
                params[name].data = value.copy()
            elif name in buffers:
                mod, buf_name = buffers[name]
                mod._buffers[buf_name] = value.copy()
            else:
                raise KeyError(f"unexpected key in state dict: {name}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        if not hasattr(self, "_buffers"):
            self._buffers: dict[str, np.ndarray] = {}
        self._buffers[name] = value

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters()})"


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]


class ModuleList(Module):
    """A list container whose items are tracked as sub-modules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, i: int) -> Module:
        return self.items[i]
