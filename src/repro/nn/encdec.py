"""Deep encoder-decoder for the ``em_denoise`` benchmark.

SciML-Bench's em_denoise task trains a convolutional encoder-decoder to
remove synthetic noise from 1x256x256 graphene electron micrographs.
Strided-conv encoder, transposed-conv decoder, MSE objective.
"""

from __future__ import annotations

from repro.nn.layers import BatchNorm2d, Conv2d, ConvTranspose2d, ReLU
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor
from repro.tensor.random import Generator
import repro.tensor as rt


class DeepEncoderDecoder(Module):
    """Symmetric conv/deconv stack; ``depth`` halvings of the resolution."""

    def __init__(
        self,
        in_channels: int = 1,
        base_channels: int = 16,
        depth: int = 3,
        gen: Generator | None = None,
    ) -> None:
        super().__init__()
        enc = []
        ch = in_channels
        width = base_channels
        for _ in range(depth):
            enc.append(Conv2d(ch, width, 3, stride=2, padding=1, gen=gen))
            enc.append(BatchNorm2d(width))
            enc.append(ReLU())
            ch, width = width, width * 2
        self.encoder = Sequential(*enc)
        dec = []
        width = ch // 2
        for i in range(depth):
            out_ch = in_channels if i == depth - 1 else width
            dec.append(
                ConvTranspose2d(ch, out_ch, 4, stride=2, padding=1, gen=gen)
            )
            if i != depth - 1:
                dec.append(BatchNorm2d(out_ch))
                dec.append(ReLU())
            ch, width = out_ch, width // 2
        self.decoder = Sequential(*dec)

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))
