"""Resilient execution: retry, degradation ladder, failover.

The paper reports compile failures (SN30/GroqChip at 512x512, GroqChip
beyond batch 1000) and real deployments add run-time faults on top; this
package turns both from terminal errors into recoverable events:

* :func:`run_with_recovery` — exponential backoff + jitter for transient
  device faults.
* :func:`compile_with_ladder` — PS escalation → node-level batch
  sharding → platform fallback (ultimately ``cpu``) for compile errors.
* :class:`ResilientCompressor` — both of the above behind the standard
  ``compress``/``decompress``/``roundtrip`` surface, plus device-lost
  failover.
* :class:`RecoveryLog` — every decision, structured and auditable.

Checkpoint/resume for training lives with the trainer
(:mod:`repro.train.checkpoint`); scripted fault injection lives in
:mod:`repro.faults`.  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.budget import RetryBudget
from repro.resilience.compressor import ResilientCompressor
from repro.resilience.ladder import (
    Attempt,
    LadderPolicy,
    LadderResult,
    RUNGS,
    compile_with_ladder,
)
from repro.resilience.log import RecoveryEvent, RecoveryLog
from repro.resilience.retry import RetryPolicy, run_with_recovery

__all__ = [
    "ResilientCompressor",
    "compile_with_ladder",
    "LadderPolicy",
    "LadderResult",
    "Attempt",
    "RUNGS",
    "RecoveryLog",
    "RecoveryEvent",
    "RetryPolicy",
    "RetryBudget",
    "run_with_recovery",
]
