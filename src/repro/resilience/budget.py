"""Retry token budget: the anti-amplification governor for retry storms.

Retries are load multipliers.  Under a silent-data-corruption storm every
detected :class:`~repro.errors.IntegrityFault` triggers a recompute; if
corruption strikes faster than recomputes drain, retries of retries pile
up and a recoverable incident becomes a metastable one — the classic
retry-storm failure (the design follows Finagle's ``RetryBudget``).

The budget is a token bucket shared per service:

* every *first* attempt deposits ``refill_per_success`` tokens (capped at
  ``capacity``), so sustained healthy traffic continuously earns the
  right to retry;
* every retry withdraws one token;
* an empty bucket means the retry is **not** attempted — the fault
  propagates immediately and ``repro_retry_budget_exhausted_total``
  counts the suppression.

With the default 20% refill ratio, retries can add at most ~20% load on
top of first attempts no matter how hard the fault injector leans on the
service.  The deposit/withdraw arithmetic is pure and deterministic, so
seeded soaks replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.metrics import get_registry


@dataclass
class RetryBudget:
    """Token bucket bounding retry amplification for one service.

    ``capacity`` also sets the initial balance — a cold service can ride
    out a small burst immediately, which keeps single-fault recovery
    (the common case) unthrottled.
    """

    capacity: float = 32.0
    refill_per_success: float = 0.2
    service: str = "default"
    _tokens: float = field(init=False, repr=False)
    _exhausted: int = field(default=0, init=False, repr=False)
    _withdrawn: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"capacity must be > 0, got {self.capacity}")
        if self.refill_per_success < 0:
            raise ConfigError(
                f"refill_per_success must be >= 0, got {self.refill_per_success}"
            )
        self._tokens = float(self.capacity)

    # ------------------------------------------------------------------
    @property
    def tokens(self) -> float:
        return self._tokens

    @property
    def exhaustions(self) -> int:
        """Retries suppressed because the bucket was empty."""
        return self._exhausted

    @property
    def withdrawals(self) -> int:
        """Retries paid for so far."""
        return self._withdrawn

    def deposit(self) -> None:
        """Credit one successful first attempt."""
        self._tokens = min(float(self.capacity), self._tokens + self.refill_per_success)

    def try_withdraw(self) -> bool:
        """Spend one token for a retry; False (and counted) when broke."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self._withdrawn += 1
            return True
        self._exhausted += 1
        get_registry().counter(
            "repro_retry_budget_exhausted_total",
            help="retries suppressed by the per-service retry token budget",
        ).inc(service=self.service)
        return False
