"""A compressor that survives device faults.

:class:`ResilientCompressor` binds one compressor configuration to one
platform at a fixed batch shape (every toolchain in the paper freezes
shapes at compile time) and layers the recovery machinery around it:

* compile failures walk the degradation ladder
  (:func:`~repro.resilience.ladder.compile_with_ladder`);
* transient run-time faults retry with backoff
  (:func:`~repro.resilience.retry.run_with_recovery`);
* a lost device is blacklisted and the program recompiles on the next
  platform down the fallback chain.

The decompress program is pinned to whatever configuration the compress
side resolved to, so the compressed representation always matches.
"""

from __future__ import annotations

import numpy as np

from repro.core.dct import DEFAULT_BLOCK
from repro.errors import DeviceLostError
from repro.resilience.ladder import LadderPolicy, LadderResult, compile_with_ladder
from repro.resilience.log import RecoveryLog
from repro.resilience.retry import RetryPolicy, run_with_recovery
from repro.tensor import Tensor


class ResilientCompressor:
    """Fault-tolerant compress/decompress at a fixed batch shape."""

    def __init__(
        self,
        height: int,
        width: int | None = None,
        *,
        platform: str = "ipu",
        method: str = "dc",
        cf: int = 4,
        s: int = 2,
        block: int = DEFAULT_BLOCK,
        batch: int = 100,
        channels: int = 3,
        retry: RetryPolicy | None = None,
        ladder: LadderPolicy | None = None,
        log: RecoveryLog | None = None,
        max_failovers: int = 3,
        plan_cache=None,
        preresolved: LadderResult | None = None,
        retry_key: int = 0,
        retry_budget=None,
    ) -> None:
        """``plan_cache`` and ``preresolved`` avoid redundant compiles.

        ``plan_cache`` (a :class:`~repro.serve.plan_cache.CompiledPlanCache`
        or anything with its ``get``/``put`` interface) is threaded through
        every ladder walk, so a freshly constructed compressor whose
        configuration already resolved elsewhere replays the walk from
        cached plans instead of re-tracing.  ``preresolved`` goes further:
        it seeds the compress side with an already-resolved
        :class:`LadderResult` (the caller must have produced it for the
        same shape/configuration), so even the ladder walk is skipped.

        ``retry_key`` selects the jitter stream for retry backoff (the
        serving layer passes a per-request id so concurrent traces
        replay bit-identically).

        ``retry_budget`` (a :class:`~repro.resilience.budget.RetryBudget`)
        is shared across every compressor a service builds, bounding the
        aggregate retry amplification an integrity-fault or transient
        storm can produce.
        """
        self.height = height
        self.width = width if width is not None else height
        self.platform = platform
        self.method = method
        self.cf = cf
        self.s = s
        self.block = block
        self.batch = batch
        self.channels = channels
        self.retry = retry if retry is not None else RetryPolicy()
        self.ladder = ladder if ladder is not None else LadderPolicy()
        # Explicit None check: an empty RecoveryLog is falsy (it has __len__).
        self.log = log if log is not None else RecoveryLog()
        self.max_failovers = max_failovers
        self.plan_cache = plan_cache
        self.retry_key = retry_key
        self.retry_budget = retry_budget
        self._dead: set[str] = set()
        self._compiled: dict[str, LadderResult] = {}
        if preresolved is not None:
            self._compiled["compress"] = preresolved

    # ------------------------------------------------------------------
    @property
    def resolved(self):
        """The attempt the compress side resolved to (``None`` before compile)."""
        result = self._compiled.get("compress")
        return result.attempt if result else None

    def _policy(self, *, pinned: bool) -> LadderPolicy:
        base = self.ladder
        return LadderPolicy(
            allow_ps=base.allow_ps and not pinned,
            ps_factors=base.ps_factors,
            allow_shard=base.allow_shard,
            allow_fallback=base.allow_fallback,
            fallback_platforms=base.fallback_platforms,
            exclude_platforms=tuple(set(base.exclude_platforms) | self._dead),
        )

    def _ensure(self, direction: str) -> LadderResult:
        result = self._compiled.get(direction)
        if result is not None:
            return result
        resolved = self.resolved
        if direction == "decompress" and resolved is not None:
            # Pin the representation chosen by the compress side.
            platform, method, s = resolved.platform, resolved.method, resolved.s
            pinned = True
        else:
            platform, method, s = self.platform, self.method, self.s
            pinned = False
        if platform in self._dead:
            candidates = [
                p
                for p in self.ladder.fallback_platforms
                if p not in self._dead and p != platform
            ]
            if not candidates:
                raise DeviceLostError(
                    f"all platforms exhausted (dead: {sorted(self._dead)})", platform=platform
                )
            platform = candidates[0]
        result = compile_with_ladder(
            self.height,
            self.width,
            platform=platform,
            method=method,
            cf=self.cf,
            s=s,
            block=self.block,
            batch=self.batch,
            channels=self.channels,
            direction=direction,
            policy=self._policy(pinned=pinned),
            log=self.log,
            cache=self.plan_cache,
        )
        self._compiled[direction] = result
        return result

    def compile(self, direction: str = "compress") -> LadderResult:
        """Compile (via the ladder) without running; idempotent."""
        return self._ensure(direction)

    @property
    def dead_platforms(self) -> frozenset[str]:
        """Platforms blacklisted by device-lost failover so far."""
        return frozenset(self._dead)

    # ------------------------------------------------------------------
    def _run(self, direction: str, x: np.ndarray) -> Tensor:
        failovers = 0
        while True:
            result = self._ensure(direction)
            try:
                return self._run_sharded(result, x)
            except DeviceLostError as exc:
                dead = exc.platform or result.attempt.platform
                self.log.record(
                    "fault",
                    f"device lost on {dead}; failing over",
                    kind="DeviceLostError",
                    platform=dead,
                )
                if failovers >= self.max_failovers:
                    self.log.record("gave_up", f"{failovers} failovers exhausted")
                    raise
                self._dead.add(dead)
                self._compiled.clear()
                failovers += 1

    def _run_sharded(self, result: LadderResult, x: np.ndarray) -> Tensor:
        n = result.attempt.n_devices
        arr = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float32)
        if n == 1:
            run = run_with_recovery(
                result.program.run, arr,
                policy=self.retry, log=self.log, retry_key=self.retry_key,
                budget=self.retry_budget,
            )
            return run.output
        shards = np.split(arr, n, axis=0)
        outputs = [
            run_with_recovery(
                result.program.run, shard,
                policy=self.retry, log=self.log, retry_key=self.retry_key,
                budget=self.retry_budget,
            ).output
            for shard in shards
        ]
        return Tensor(np.concatenate([o.numpy() for o in outputs], axis=0))

    # ------------------------------------------------------------------
    def compress(self, x) -> Tensor:
        return self._run("compress", x)

    def decompress(self, y) -> Tensor:
        return self._run("decompress", y)

    def roundtrip(self, x) -> Tensor:
        return self.decompress(self.compress(x))

    @property
    def ratio(self) -> float:
        result = self._compiled.get("compress")
        if result is not None:
            return result.comp.ratio
        from repro.core.api import make_compressor

        return make_compressor(
            self.height, self.width, method=self.method, cf=self.cf, s=self.s, block=self.block
        ).ratio
