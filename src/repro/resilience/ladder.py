"""Graceful-degradation ladder for compile failures.

When a platform's toolchain rejects a compressor program
(:class:`~repro.errors.OutOfMemoryError`,
:class:`~repro.errors.UnsupportedOperatorError`), the ladder walks a
fixed sequence of increasingly drastic recoveries, mirroring what the
paper's authors did by hand:

1. **``ps`` rung** — switch to partial serialization and escalate the
   subdivision factor ``s`` (2 → 4 → 8).  This is exactly how the paper
   gets 512x512 onto the SN30 (Section 3.5.1).
2. **``shard`` rung** — split the batch across one deployment node's
   devices (:data:`repro.accel.multichip.NODE_SIZES`); each device
   compiles the smaller per-shard program.  Recovers GroqChip's
   batch-size ceiling.
3. **``fallback`` rung** — recompile on an alternate platform, ending at
   the gate-free ``cpu`` host.

Every attempt — failed or successful — is recorded in a
:class:`~repro.resilience.log.RecoveryLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.compiler import CompiledProgram, PlanKey, compile_program
from repro.accel.multichip import shard_counts
from repro.core.api import Compressor, make_compressor
from repro.core.dct import DEFAULT_BLOCK
from repro.errors import CompileError, ConfigError
from repro.resilience.log import RecoveryLog

RUNGS = ("original", "ps", "shard", "fallback")


@dataclass
class LadderPolicy:
    """Which rungs the ladder may take, and in what shape."""

    allow_ps: bool = True
    ps_factors: tuple[int, ...] = (2, 4, 8)
    allow_shard: bool = True
    allow_fallback: bool = True
    fallback_platforms: tuple[str, ...] = ("ipu", "cs2", "sn30", "groq", "a100", "cpu")
    exclude_platforms: tuple[str, ...] = ()


@dataclass(frozen=True)
class Attempt:
    """One (rung, configuration) the ladder tries."""

    rung: str
    platform: str
    method: str
    s: int
    n_devices: int = 1

    def describe(self) -> str:
        bits = [f"{self.method}" + (f" s={self.s}" if self.method == "ps" else "")]
        if self.n_devices > 1:
            bits.append(f"x{self.n_devices} devices")
        return f"{self.rung}: {self.platform} " + ", ".join(bits)


@dataclass
class LadderResult:
    """A successfully compiled program plus how the ladder got there."""

    program: CompiledProgram
    comp: Compressor
    attempt: Attempt
    failures: list[tuple[Attempt, CompileError]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.attempt.rung != "original"


def _attempts(
    platform: str, method: str, s: int, batch: int, policy: LadderPolicy
) -> list[Attempt]:
    out = [Attempt("original", platform, method, s)]
    if policy.allow_ps:
        floor = s if method == "ps" else 0
        for factor in policy.ps_factors:
            if factor > floor:
                out.append(Attempt("ps", platform, "ps", factor))
    if policy.allow_shard:
        counts = shard_counts(platform, batch)
        if counts:
            n = counts[0]  # largest even shard → smallest per-device program
            out.append(Attempt("shard", platform, method, s, n_devices=n))
            if policy.allow_ps:
                for factor in policy.ps_factors:
                    out.append(Attempt("shard", platform, "ps", factor, n_devices=n))
    if policy.allow_fallback:
        for alt in policy.fallback_platforms:
            if alt != platform and alt not in policy.exclude_platforms:
                out.append(Attempt("fallback", alt, method, s))
    return [a for a in out if a.platform not in policy.exclude_platforms]


def compile_with_ladder(
    height: int,
    width: int | None = None,
    *,
    platform: str,
    method: str = "dc",
    cf: int = 4,
    s: int = 2,
    block: int = DEFAULT_BLOCK,
    batch: int = 100,
    channels: int = 3,
    direction: str = "compress",
    policy: LadderPolicy | None = None,
    log: RecoveryLog | None = None,
    cache=None,
) -> LadderResult:
    """Compile a compressor program, degrading until something fits.

    Returns a :class:`LadderResult` whose ``attempt`` records the rung
    that succeeded; raises the last :class:`CompileError` if every rung
    is exhausted.

    ``cache`` is an optional
    :class:`~repro.serve.plan_cache.CompiledPlanCache` (or anything with
    its ``get``/``put`` interface).  Each attempt consults it by
    :class:`~repro.accel.compiler.PlanKey` before tracing: cached plans
    skip compilation entirely, and cached *failures* skip the doomed
    re-trace — so a ladder walk that already resolved once replays in
    O(attempts) dictionary lookups.
    """
    if direction not in ("compress", "decompress"):
        raise ConfigError(f"direction must be compress|decompress, got {direction!r}")
    policy = policy if policy is not None else LadderPolicy()
    # Explicit None check: an empty RecoveryLog is falsy (it has __len__).
    log = log if log is not None else RecoveryLog()
    failures: list[tuple[Attempt, CompileError]] = []
    last_exc: CompileError | None = None

    for attempt in _attempts(platform, method, s, batch, policy):
        if attempt.n_devices > 1 and batch % attempt.n_devices:
            continue
        shard = batch // attempt.n_devices
        comp = make_compressor(
            height, width, method=attempt.method, cf=cf, s=attempt.s, block=block
        )
        in_shape = (shard, channels, height, width if width is not None else height)
        if direction == "compress":
            fn, example_shape = comp.compress, in_shape
        else:
            fn, example_shape = comp.decompress, comp.compressed_shape(in_shape)
        key = PlanKey.for_compressor(
            attempt.platform,
            example_shape,
            method=attempt.method,
            cf=cf,
            s=attempt.s,
            block=block,
            direction=direction,
        )
        program = cache.get(key) if cache is not None else None
        if isinstance(program, CompileError):
            # Deterministic toolchain: a remembered rejection needs no re-trace.
            failures.append((attempt, program))
            last_exc = program
            log.record(
                "fault",
                f"compile failed, cached ({attempt.describe()}): {program}",
                rung=attempt.rung,
                platform=attempt.platform,
                reason=program.reason or "",
            )
            continue
        if program is None:
            try:
                program = compile_program(
                    fn,
                    np.zeros(example_shape, np.float32),
                    attempt.platform,
                    name=f"{attempt.method}-{direction}-{attempt.platform}",
                    key=key,
                )
            except CompileError as exc:
                if cache is not None:
                    cache.put(key, exc)
                failures.append((attempt, exc))
                last_exc = exc
                log.record(
                    "fault",
                    f"compile failed ({attempt.describe()}): {exc}",
                    rung=attempt.rung,
                    platform=attempt.platform,
                    reason=exc.reason or "",
                )
                continue
            if cache is not None:
                cache.put(key, program)
        if attempt.rung != "original":
            log.record(
                "rung",
                f"degraded to {attempt.describe()}",
                rung=attempt.rung,
                platform=attempt.platform,
                method=attempt.method,
                s=attempt.s,
                n_devices=attempt.n_devices,
            )
            log.record("recovered", f"compiled after {len(failures)} failed attempt(s)")
        return LadderResult(program=program, comp=comp, attempt=attempt, failures=failures)

    log.record("gave_up", f"all {len(failures)} ladder attempts failed")
    assert last_exc is not None
    raise last_exc
