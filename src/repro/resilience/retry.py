"""Retry with exponential backoff + jitter for transient device faults.

Transient faults (host-link timeouts, launch failures) are retried up to
``max_retries`` times with capped exponential backoff and seeded jitter;
persistent faults (:class:`~repro.errors.DeviceLostError`) propagate
immediately so the caller can fail over instead of burning retries on a
dead device.  ``sleep`` is injectable so tests run instantly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import TransientDeviceError
from repro.resilience.log import RecoveryLog


@dataclass
class RetryPolicy:
    """Backoff schedule for transient faults.

    Jitter is a pure function of ``(seed, attempt, key)`` — there is no
    shared mutable RNG — so concurrent traces replay bit-identically no
    matter how retries from different requests interleave.  ``key`` is a
    caller-chosen stream id (the serving layer passes the request id).
    """

    max_retries: int = 3
    base_delay: float = 0.05     # seconds before the first retry
    max_delay: float = 2.0       # backoff cap
    jitter: float = 0.5          # +- fraction of the delay, seeded
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered statelessly."""
        base = min(self.max_delay, self.base_delay * (2.0**attempt))
        if self.jitter:
            u = np.random.default_rng((self.seed, int(key), attempt)).random()
            base *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return max(0.0, base)


def run_with_recovery(
    fn: Callable,
    *args,
    policy: RetryPolicy | None = None,
    log: RecoveryLog | None = None,
    retry_key: int = 0,
    budget=None,
    **kwargs,
):
    """Call ``fn(*args, **kwargs)``, retrying transient device faults.

    Returns ``fn``'s result.  Re-raises the last
    :class:`TransientDeviceError` once retries are exhausted, and any
    non-transient exception immediately (device-lost and compile errors
    are the degradation ladder's job, not retry's).  ``retry_key``
    selects the jitter stream (see :meth:`RetryPolicy.delay`).

    ``budget`` (a :class:`~repro.resilience.budget.RetryBudget`) bounds
    retry amplification across *all* calls sharing it: each retry must
    withdraw a token, and when the bucket is empty the fault propagates
    immediately instead of joining a retry storm.  First-attempt
    successes deposit the refill credit.
    """
    policy = policy if policy is not None else RetryPolicy()
    # Explicit None check: an empty RecoveryLog is falsy (it has __len__).
    log = log if log is not None else RecoveryLog()
    attempt = 0
    while True:
        try:
            result = fn(*args, **kwargs)
        except TransientDeviceError as exc:
            log.record(
                "fault",
                f"transient fault: {exc}",
                kind=type(exc).__name__,
                platform=exc.platform,
                attempt=attempt,
            )
            if attempt >= policy.max_retries:
                log.record("gave_up", f"retries exhausted after {attempt + 1} attempts")
                raise
            if budget is not None and not budget.try_withdraw():
                log.record(
                    "gave_up",
                    f"retry budget exhausted after {attempt + 1} attempts",
                    reason="retry_budget",
                )
                raise
            pause = policy.delay(attempt, key=retry_key)
            log.record("retry", f"retrying after {pause * 1e3:.0f} ms backoff", attempt=attempt + 1)
            policy.sleep(pause)
            attempt += 1
            continue
        if attempt:
            log.record("recovered", f"succeeded on attempt {attempt + 1}")
        elif budget is not None:
            budget.deposit()
        return result
