"""Structured record of every recovery decision.

Every retry, degradation rung, checkpoint restore and give-up is recorded
as a :class:`RecoveryEvent` so tests can assert the exact recovery path
and operators can audit what the resilience layer did to their job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RecoveryEvent:
    """One decision made by the resilience layer."""

    action: str          # "fault" | "retry" | "rung" | "recovered" | "gave_up"
                         # | "checkpoint" | "restore"
    detail: str          # human-readable description
    context: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {self.context}" if self.context else ""
        return f"[{self.action}] {self.detail}{extra}"


class RecoveryLog:
    """Append-only event log shared across the resilience layer."""

    def __init__(self) -> None:
        self.events: list[RecoveryEvent] = []

    def record(self, action: str, detail: str, **context) -> RecoveryEvent:
        event = RecoveryEvent(action=action, detail=detail, context=context)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def actions(self) -> list[str]:
        return [e.action for e in self.events]

    def by_action(self, action: str) -> list[RecoveryEvent]:
        return [e for e in self.events if e.action == action]

    def rungs(self) -> list[str]:
        """The degradation rungs taken, in order (e.g. ``["ps", "shard"]``)."""
        return [e.context.get("rung", "") for e in self.by_action("rung")]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if not self.events:
            return "(no recovery events)"
        return "\n".join(f"  {i:2d}. {e}" for i, e in enumerate(self.events))

    def to_json(self) -> str:
        return json.dumps(
            [{"action": e.action, "detail": e.detail, "context": e.context} for e in self.events],
            indent=2,
        )
