"""Structured record of every recovery decision.

Every retry, degradation rung, checkpoint restore and give-up is recorded
as a :class:`RecoveryEvent` so tests can assert the exact recovery path
and operators can audit what the resilience layer did to their job.

Recovery events also flow into :mod:`repro.obs`: each recorded action
increments ``repro_recovery_events_total{action=...}`` in the process
metrics registry, and while a :class:`~repro.obs.trace.Tracer` is bound
(:meth:`RecoveryLog.bind` — the serving layer binds around each batch
dispatch) every event is mirrored as a ``resilience.<action>`` trace
event carrying the originating requests' trace IDs, instead of
free-floating in a per-module list.

Retention is bounded when asked: ``RecoveryLog(max_events=N)`` keeps the
*last* ``N`` events in a ring buffer so a million-request fleet soak does
not grow memory without bound.  The ``repro_recovery_events_total``
counters stay exact regardless (they are incremented at record time, not
derived from the retained window), and every event that falls off the
ring is tallied both on :attr:`dropped_events` and on
``repro_recovery_events_dropped_total``.  Consumers that scan "events
since a point" use :meth:`mark` / :meth:`since`, which are stable across
drops — positional slicing of :attr:`events` is not.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.metrics import get_registry


@dataclass(frozen=True)
class RecoveryEvent:
    """One decision made by the resilience layer."""

    action: str          # "fault" | "retry" | "rung" | "recovered" | "gave_up"
                         # | "checkpoint" | "restore"
    detail: str          # human-readable description
    context: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {self.context}" if self.context else ""
        return f"[{self.action}] {self.detail}{extra}"


class RecoveryLog:
    """Event log shared across the resilience layer.

    Unbounded by default (the pre-fleet behaviour); pass ``max_events``
    to keep only the most recent events in a ring buffer.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ConfigError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self._events: deque[RecoveryEvent] = deque(maxlen=max_events)
        self._total = 0
        self._tracer = None
        self._trace_ids: tuple[str, ...] = ()
        self._trace_time = 0.0

    def record(self, action: str, detail: str, **context) -> RecoveryEvent:
        event = RecoveryEvent(action=action, detail=detail, context=context)
        if (
            self._events.maxlen is not None
            and len(self._events) == self._events.maxlen
        ):
            get_registry().counter(
                "repro_recovery_events_dropped_total",
                help="recovery events evicted from bounded ring buffers",
            ).inc()
        self._events.append(event)
        self._total += 1
        get_registry().counter(
            "repro_recovery_events_total", help="resilience-layer decisions, by action"
        ).inc(action=action)
        if self._tracer is not None:
            for tid in self._trace_ids:
                self._tracer.record_event(
                    tid, f"resilience.{action}", self._trace_time, detail=detail, **context
                )
        return event

    # ------------------------------------------------------------------
    @property
    def events(self) -> list[RecoveryEvent]:
        """The retained events, oldest first (all of them when unbounded)."""
        return list(self._events)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including any dropped from the ring."""
        return self._total

    @property
    def dropped_events(self) -> int:
        """Events evicted by the ring buffer (0 when unbounded)."""
        return self._total - len(self._events)

    def mark(self) -> int:
        """Stable cursor for :meth:`since` (a total-recorded watermark)."""
        return self._total

    def since(self, mark: int) -> list[RecoveryEvent]:
        """Events recorded after ``mark`` that are still retained.

        Unlike slicing :attr:`events` with a remembered length, this stays
        correct when the ring buffer has dropped older events in between.
        """
        first_retained = self._total - len(self._events)
        start = max(0, mark - first_retained)
        if start == 0:
            return list(self._events)
        events = list(self._events)
        return events[start:]

    # ------------------------------------------------------------------
    def bind(self, tracer, trace_ids, time: float) -> None:
        """Mirror subsequent events onto ``trace_ids`` at modelled ``time``.

        The serving layer binds the member requests of a batch before
        handing this log to the ladder/retry machinery, so a retry or
        degradation is attributable to the exact requests it delayed.
        """
        self._tracer = tracer
        self._trace_ids = tuple(trace_ids)
        self._trace_time = time

    def unbind(self) -> None:
        self._tracer = None
        self._trace_ids = ()

    # ------------------------------------------------------------------
    def actions(self) -> list[str]:
        return [e.action for e in self._events]

    def by_action(self, action: str) -> list[RecoveryEvent]:
        return [e for e in self._events if e.action == action]

    def rungs(self) -> list[str]:
        """The degradation rungs taken, in order (e.g. ``["ps", "shard"]``)."""
        return [e.context.get("rung", "") for e in self.by_action("rung")]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if not self._events:
            return "(no recovery events)"
        offset = self.dropped_events
        lines = [f"  {offset + i:2d}. {e}" for i, e in enumerate(self._events)]
        if offset:
            lines.insert(0, f"  ... {offset} earlier event(s) dropped from the ring")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            [{"action": e.action, "detail": e.detail, "context": e.context} for e in self._events],
            indent=2,
        )
