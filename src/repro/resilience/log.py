"""Structured record of every recovery decision.

Every retry, degradation rung, checkpoint restore and give-up is recorded
as a :class:`RecoveryEvent` so tests can assert the exact recovery path
and operators can audit what the resilience layer did to their job.

Recovery events also flow into :mod:`repro.obs`: each recorded action
increments ``repro_recovery_events_total{action=...}`` in the process
metrics registry, and while a :class:`~repro.obs.trace.Tracer` is bound
(:meth:`RecoveryLog.bind` — the serving layer binds around each batch
dispatch) every event is mirrored as a ``resilience.<action>`` trace
event carrying the originating requests' trace IDs, instead of
free-floating in a per-module list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry


@dataclass(frozen=True)
class RecoveryEvent:
    """One decision made by the resilience layer."""

    action: str          # "fault" | "retry" | "rung" | "recovered" | "gave_up"
                         # | "checkpoint" | "restore"
    detail: str          # human-readable description
    context: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {self.context}" if self.context else ""
        return f"[{self.action}] {self.detail}{extra}"


class RecoveryLog:
    """Append-only event log shared across the resilience layer."""

    def __init__(self) -> None:
        self.events: list[RecoveryEvent] = []
        self._tracer = None
        self._trace_ids: tuple[str, ...] = ()
        self._trace_time = 0.0

    def record(self, action: str, detail: str, **context) -> RecoveryEvent:
        event = RecoveryEvent(action=action, detail=detail, context=context)
        self.events.append(event)
        get_registry().counter(
            "repro_recovery_events_total", help="resilience-layer decisions, by action"
        ).inc(action=action)
        if self._tracer is not None:
            for tid in self._trace_ids:
                self._tracer.record_event(
                    tid, f"resilience.{action}", self._trace_time, detail=detail, **context
                )
        return event

    # ------------------------------------------------------------------
    def bind(self, tracer, trace_ids, time: float) -> None:
        """Mirror subsequent events onto ``trace_ids`` at modelled ``time``.

        The serving layer binds the member requests of a batch before
        handing this log to the ladder/retry machinery, so a retry or
        degradation is attributable to the exact requests it delayed.
        """
        self._tracer = tracer
        self._trace_ids = tuple(trace_ids)
        self._trace_time = time

    def unbind(self) -> None:
        self._tracer = None
        self._trace_ids = ()

    # ------------------------------------------------------------------
    def actions(self) -> list[str]:
        return [e.action for e in self.events]

    def by_action(self, action: str) -> list[RecoveryEvent]:
        return [e for e in self.events if e.action == action]

    def rungs(self) -> list[str]:
        """The degradation rungs taken, in order (e.g. ``["ps", "shard"]``)."""
        return [e.context.get("rung", "") for e in self.by_action("rung")]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if not self.events:
            return "(no recovery events)"
        return "\n".join(f"  {i:2d}. {e}" for i, e in enumerate(self.events))

    def to_json(self) -> str:
        return json.dumps(
            [{"action": e.action, "detail": e.detail, "context": e.context} for e in self.events],
            indent=2,
        )
