"""Compressed-at-rest dataset pipeline (the storage use case, end to end).

The paper motivates training-data compression with disk footprint: the
OPT-175B corpus is 800 GB while accelerator-adjacent storage is precious.
:class:`CompressedDataset` materialises any map-style dataset into DCZ
containers once, then serves decompressed samples on access — so the
training loop downstream is unchanged while the resident copy of the
dataset is ``ratio``x smaller.  ``storage`` chooses between an in-memory
blob store and an on-disk directory of ``.dcz`` files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core import container
from repro.core.api import Compressor, make_compressor
from repro.core.padded import PaddedCompressor
from repro.data.loader import Dataset
from repro.errors import ConfigError


class CompressedDataset(Dataset):
    """Wrap a dataset so samples are stored chop-compressed.

    Targets (labels/masks) are stored raw — they are small and often
    integer-valued.  Samples are compressed with one fixed-shape
    compressor built from the first sample's plane size (all samples in
    the paper's datasets share a shape; a mismatch raises at build time).

    Parameters
    ----------
    base:
        The source dataset; it is fully materialised once at build.
    cf, method:
        Compressor configuration.
    storage:
        ``"memory"`` (default) keeps blobs in RAM; a path-like stores one
        ``.dcz`` file per sample in that directory.
    """

    def __init__(
        self,
        base: Dataset,
        *,
        cf: int = 4,
        method: str = "dc",
        storage="memory",
    ) -> None:
        if len(base) == 0:
            raise ConfigError("cannot compress an empty dataset")
        first_x, _ = base[0]
        h, w = first_x.shape[-2:]
        if h % 8 or w % 8:
            self.compressor: Compressor = PaddedCompressor(h, w, method=method, cf=cf)
        else:
            self.compressor = make_compressor(h, w, method=method, cf=cf)
        self._dir: Path | None = None
        if storage != "memory":
            self._dir = Path(storage)
            self._dir.mkdir(parents=True, exist_ok=True)
        self._blobs: list[bytes | Path] = []
        self._targets: list[np.ndarray] = []
        self.raw_bytes = 0
        self.stored_bytes = 0
        for i in range(len(base)):
            x, y = base[i]
            x = np.asarray(x, dtype=np.float32)
            if x.shape[-2:] != (h, w):
                raise ConfigError(
                    f"sample {i} plane {x.shape[-2:]} differs from first sample {(h, w)}"
                )
            blob = container.pack(x, self.compressor)
            self.raw_bytes += x.nbytes
            self.stored_bytes += len(blob)
            if self._dir is not None:
                path = self._dir / f"sample_{i:06d}.dcz"
                path.write_bytes(blob)
                self._blobs.append(path)
            else:
                self._blobs.append(blob)
            self._targets.append(np.asarray(y))

    @property
    def storage_ratio(self) -> float:
        """Achieved at-rest compression over the raw FP32 samples."""
        return self.raw_bytes / self.stored_bytes

    def __len__(self) -> int:
        return len(self._blobs)

    def __getitem__(self, index: int):
        blob = self._blobs[index]
        if isinstance(blob, Path):
            blob = blob.read_bytes()
        x, _header = container.unpack(blob)
        return x.astype(np.float32), self._targets[index]
