"""Synthetic SciML-Bench dataset stand-ins (paper Table 2/3).

* :class:`EMGrapheneDataset`   — (noisy, clean) electron-micrograph pairs
  for ``em_denoise``; the clean signal is a hexagonal lattice pattern plus
  defect blobs, the noise is white+correlated — removing high-frequency
  DCT coefficients *helps* this task, reproducing the paper's observation
  that compression can improve em_denoise test loss.
* :class:`OpticalDamageDataset` — laser-optics images for
  ``optical_damage``; training samples are undamaged beam profiles, test
  samples optionally carry bright damage spots so reconstruction error
  flags damage.
* :class:`SLSTRCloudDataset`   — 9-channel satellite-like imagery with a
  binary per-pixel cloud mask for ``slstr_cloud``; the mask derives from a
  smooth field that also modulates the channels, so it is learnable from
  low-frequency content.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Dataset
from repro.data.synthetic import (
    correlated_field,
    gaussian_blobs,
    index_rng,
    lattice_pattern,
    radial_profile,
)


class EMGrapheneDataset(Dataset):
    """(noisy, clean) pairs of 1-channel graphene-like micrographs."""

    channels = 1

    def __init__(
        self,
        n: int = 256,
        resolution: int = 256,
        noise: float = 0.5,
        seed: int = 0,
        start: int = 0,
    ) -> None:
        self.n = int(n)
        self.resolution = int(resolution)
        self.noise = float(noise)
        self.seed = int(seed)
        self.start = int(start)

    @property
    def sample_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.resolution, self.resolution)

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < self.n:
            raise IndexError(index)
        rng = index_rng(self.seed, self.start + index)
        res = self.resolution
        clean = lattice_pattern((res, res), rng, period=max(6.0, res / 24.0))
        clean = clean + 0.5 * gaussian_blobs((res, res), rng, n_blobs=3)
        clean = clean.astype(np.float32)
        white = rng.standard_normal((res, res)).astype(np.float32)
        speckle = correlated_field((res, res), rng, beta=0.8)
        noisy = clean + self.noise * (0.7 * white + 0.3 * speckle)
        return noisy[None].astype(np.float32), clean[None]


class OpticalDamageDataset(Dataset):
    """Laser-optics beam images; autoencoder target equals the input."""

    channels = 1

    def __init__(
        self,
        n: int = 256,
        resolution: int = 200,
        damaged: bool = False,
        damage_rate: float = 0.5,
        seed: int = 0,
        start: int = 0,
    ) -> None:
        self.n = int(n)
        self.resolution = int(resolution)
        self.damaged = bool(damaged)
        self.damage_rate = float(damage_rate)
        self.seed = int(seed)
        self.start = int(start)

    @property
    def sample_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.resolution, self.resolution)

    def __len__(self) -> int:
        return self.n

    def is_damaged(self, index: int) -> bool:
        """Whether sample ``index`` carries damage (only when ``damaged``)."""
        if not self.damaged:
            return False
        rng = index_rng(self.seed ^ 0xDA11A6E, self.start + index)
        return bool(rng.random() < self.damage_rate)

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < self.n:
            raise IndexError(index)
        rng = index_rng(self.seed, self.start + index)
        res = self.resolution
        img = radial_profile((res, res), rng)
        img = img + 0.02 * rng.standard_normal((res, res)).astype(np.float32)
        if self.is_damaged(index):
            img = img + gaussian_blobs(
                (res, res), rng, n_blobs=int(rng.integers(1, 4)),
                sigma_range=(1.5, 4.0), amplitude_range=(0.6, 1.2),
            )
        img = np.clip(img, 0.0, 1.0).astype(np.float32)[None]
        return img, img.copy()


class SLSTRCloudDataset(Dataset):
    """9-channel remote-sensing imagery with a binary cloud mask target."""

    channels = 9

    def __init__(
        self,
        n: int = 256,
        resolution: int = 256,
        cloud_fraction: float = 0.4,
        seed: int = 0,
        start: int = 0,
    ) -> None:
        self.n = int(n)
        self.resolution = int(resolution)
        self.cloud_fraction = float(cloud_fraction)
        self.seed = int(seed)
        self.start = int(start)

    @property
    def sample_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.resolution, self.resolution)

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < self.n:
            raise IndexError(index)
        rng = index_rng(self.seed, self.start + index)
        res = self.resolution
        # A smooth "cloudiness" field; thresholding at the requested
        # quantile gives the ground-truth mask.
        cloud = correlated_field((res, res), rng, beta=3.5)
        threshold = np.quantile(cloud, 1.0 - self.cloud_fraction)
        mask = (cloud > threshold).astype(np.float32)
        channels = np.empty((self.channels, res, res), dtype=np.float32)
        for ch in range(self.channels):
            # Radiometric channels: surface background plus cloud signal
            # whose sign/strength varies by band (visible bright, thermal
            # dark), with per-channel sensor noise.
            surface = correlated_field((res, res), rng, beta=2.5)
            gain = 1.0 - 2.0 * (ch % 2)  # alternate bright/dark response
            strength = 0.8 + 0.1 * ch / self.channels
            noise = 0.15 * rng.standard_normal((res, res)).astype(np.float32)
            channels[ch] = 0.5 * surface + gain * strength * np.maximum(
                cloud - threshold, 0.0
            ) + noise
        return channels, mask[None]
