"""Seeded synthetic datasets standing in for the paper's Table 2/3 data.

The real datasets (CIFAR10, em_graphene_sim, optical_damage_ds1,
cloud_slstr_ds1) are not shipped; each synthetic counterpart matches the
sample shape and the *spectral* character that matters to a DCT-based
compressor — spatially-correlated fields whose energy compacts into
low-frequency coefficients, plus task-relevant structure (class
signatures, noise processes, damage artefacts, cloud masks).  Every
sample is generated deterministically from ``(seed, index)``, so datasets
are lazy, unbounded, and bit-reproducible.
"""

from repro.data.synthetic import (
    correlated_field,
    gaussian_blobs,
    lattice_pattern,
    radial_profile,
)
from repro.data.cifar import SyntheticCIFAR10
from repro.data.sciml import EMGrapheneDataset, OpticalDamageDataset, SLSTRCloudDataset
from repro.data.loader import DataLoader, Dataset
from repro.data.compressed import CompressedDataset

__all__ = [
    "correlated_field",
    "gaussian_blobs",
    "lattice_pattern",
    "radial_profile",
    "SyntheticCIFAR10",
    "EMGrapheneDataset",
    "OpticalDamageDataset",
    "SLSTRCloudDataset",
    "DataLoader",
    "Dataset",
    "CompressedDataset",
]
