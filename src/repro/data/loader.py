"""Minimal map-style ``Dataset`` / batching ``DataLoader``."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.random import Generator


class Dataset:
    """Map-style dataset: ``__len__`` plus ``__getitem__ -> (x, y)``."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int):  # pragma: no cover - abstract
        raise NotImplementedError


class DataLoader:
    """Batches a dataset into stacked NumPy arrays.

    The last partial batch is dropped when ``drop_last`` (the paper's
    accelerator targets need every batch the same static size).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = True,
        gen: Generator | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.gen = gen or Generator(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.gen.permutation(n) if self.shuffle else np.arange(n)
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            idx = order[start : start + self.batch_size]
            xs, ys = zip(*(self.dataset[int(i)] for i in idx))
            yield np.stack(xs), np.stack(ys)
