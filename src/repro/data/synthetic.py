"""Primitive image synthesizers shared by the dataset generators.

All functions are vectorised and take an explicit ``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np


def correlated_field(
    shape: tuple[int, int],
    rng: np.random.Generator,
    beta: float = 2.0,
) -> np.ndarray:
    """Power-law (1/f^beta) correlated random field via spectral synthesis.

    ``beta=0`` is white noise; ``beta~2`` resembles natural images /
    geophysical fields whose DCT energy compacts into low frequencies —
    the property the paper's compressor relies on.
    Output is normalised to zero mean, unit variance.
    """
    h, w = shape
    fy = np.fft.fftfreq(h).reshape(-1, 1)
    fx = np.fft.rfftfreq(w).reshape(1, -1)
    radius = np.sqrt(fy * fy + fx * fx)
    radius[0, 0] = 1.0  # avoid div-by-zero at DC
    amplitude = radius ** (-beta / 2.0)
    amplitude[0, 0] = 0.0  # zero-mean field
    phase = rng.uniform(0.0, 2.0 * np.pi, size=amplitude.shape)
    spectrum = amplitude * np.exp(1j * phase)
    field = np.fft.irfft2(spectrum, s=shape)
    std = field.std()
    if std > 0:
        field = field / std
    return field.astype(np.float32)


def gaussian_blobs(
    shape: tuple[int, int],
    rng: np.random.Generator,
    n_blobs: int = 5,
    sigma_range: tuple[float, float] = (2.0, 8.0),
    amplitude_range: tuple[float, float] = (0.5, 1.5),
) -> np.ndarray:
    """Sum of random Gaussian bumps (particles, damage spots, cloud cores)."""
    h, w = shape
    yy = np.arange(h, dtype=np.float32).reshape(-1, 1)
    xx = np.arange(w, dtype=np.float32).reshape(1, -1)
    out = np.zeros(shape, dtype=np.float32)
    for _ in range(n_blobs):
        cy, cx = rng.uniform(0, h), rng.uniform(0, w)
        sigma = rng.uniform(*sigma_range)
        amp = rng.uniform(*amplitude_range)
        out += amp * np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2.0 * sigma**2))
    return out


def lattice_pattern(
    shape: tuple[int, int],
    rng: np.random.Generator,
    period: float = 8.0,
    jitter: float = 0.1,
) -> np.ndarray:
    """Hexagonal interference pattern (graphene-like micrograph texture).

    Sum of three plane waves at 60-degree spacings with random global
    orientation and phase.
    """
    h, w = shape
    yy = np.arange(h, dtype=np.float32).reshape(-1, 1)
    xx = np.arange(w, dtype=np.float32).reshape(1, -1)
    theta0 = rng.uniform(0.0, np.pi / 3.0)
    k = 2.0 * np.pi / (period * (1.0 + rng.uniform(-jitter, jitter)))
    out = np.zeros(shape, dtype=np.float32)
    for m in range(3):
        theta = theta0 + m * np.pi / 3.0
        phase = rng.uniform(0.0, 2.0 * np.pi)
        out += np.cos(k * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
    return out / 3.0


def radial_profile(
    shape: tuple[int, int],
    rng: np.random.Generator,
    rings: int = 4,
) -> np.ndarray:
    """Laser-beam-like radial intensity with interference rings in [0, 1]."""
    h, w = shape
    yy = (np.arange(h, dtype=np.float32) - h / 2.0).reshape(-1, 1)
    xx = (np.arange(w, dtype=np.float32) - w / 2.0).reshape(1, -1)
    cy = rng.uniform(-0.05, 0.05) * h
    cx = rng.uniform(-0.05, 0.05) * w
    r = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    waist = rng.uniform(0.25, 0.35) * min(h, w)
    beam = np.exp(-((r / waist) ** 2))
    ring_phase = rng.uniform(0.0, 2.0 * np.pi)
    ring = 0.5 + 0.5 * np.cos(2.0 * np.pi * rings * r / (min(h, w) / 2.0) + ring_phase)
    out = beam * (0.8 + 0.2 * ring)
    return np.clip(out, 0.0, 1.0).astype(np.float32)


def index_rng(seed: int, index: int) -> np.random.Generator:
    """Deterministic per-sample generator from (dataset seed, index)."""
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(index,)))
