"""Synthetic CIFAR10 stand-in for the ``classify`` benchmark.

Ten classes, 3x32x32 samples, constructed so that classification accuracy
responds to DCT+Chop exactly the way the paper's Fig. 8a reports: small
chop factors (high compression ratios) hurt, large chop factors barely
matter.

Construction: class ``c`` is a (layout, texture) pair — ``layout = c // 2``
selects one of five smooth (low-frequency) scene templates, ``texture =
c % 2`` selects one of two *frequency-targeted* textures synthesised
directly in the 8x8 block-DCT domain with energy on the diagonal
coefficients ``(k, k), k = 2..7``.  A chop at factor CF zeroes every
block coefficient with index >= CF, so:

* CF=2 erases the texture completely — the two classes sharing each
  layout collapse and accuracy saturates near 50% plus chance;
* each CF increment restores one more diagonal band, smoothly recovering
  the texture signal — accuracy degrades monotonically with compression
  ratio, the paper's observed stratification.

A purely low-frequency dataset (e.g. template+smooth noise) would be
compression-immune and could not reproduce Fig. 8a.
"""

from __future__ import annotations

import numpy as np

from repro.core.dct import dct_matrix
from repro.data.loader import Dataset
from repro.data.synthetic import correlated_field, index_rng

NUM_CLASSES = 10
NUM_LAYOUTS = 5
NUM_TEXTURES = 2
_BLOCK = 8


def _texture_plane(resolution: int, texture_id: int, rng: np.random.Generator) -> np.ndarray:
    """Tile a texture whose energy sits on block-DCT diagonal coefficients.

    Each 8x8 block gets coefficients at (k, k), k=2..7, with a
    texture-specific sign signature and per-block random sign flips so the
    texture is stationary but not a trivial global pattern.
    """
    nb = resolution // _BLOCK
    coeffs = np.zeros((nb, nb, _BLOCK, _BLOCK), dtype=np.float32)
    # Texture 0 and 1 differ by the sign pattern along the diagonal.
    signs = np.array([1.0 if (k + texture_id) % 2 == 0 else -1.0 for k in range(2, _BLOCK)])
    block_signs = rng.choice([-1.0, 1.0], size=(nb, nb)).astype(np.float32)
    for i, k in enumerate(range(2, _BLOCK)):
        coeffs[:, :, k, k] = signs[i] * block_signs
    t = dct_matrix(_BLOCK)
    blocks = np.einsum("ji,xyjk,kl->xyil", t, coeffs, t, optimize=True)
    return (
        blocks.transpose(0, 2, 1, 3).reshape(resolution, resolution).astype(np.float32)
    )


class SyntheticCIFAR10(Dataset):
    """Lazy, deterministic 10-class image dataset (see module docstring).

    Parameters
    ----------
    n:
        Number of samples.
    resolution:
        Square sample size, multiple of 8 (32 matches CIFAR10).
    noise:
        Std of the additive correlated per-sample noise.
    texture_amp:
        Amplitude of the frequency-targeted texture component.
    """

    channels = 3

    def __init__(
        self,
        n: int = 1000,
        resolution: int = 32,
        noise: float = 0.35,
        texture_amp: float = 0.9,
        seed: int = 0,
        start: int = 0,
    ) -> None:
        if resolution % _BLOCK:
            raise ValueError(f"resolution must be a multiple of 8, got {resolution}")
        self.n = int(n)
        self.resolution = int(resolution)
        self.noise = float(noise)
        self.texture_amp = float(texture_amp)
        self.seed = int(seed)
        self.start = int(start)
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(0xC1FA,)))
        res = self.resolution
        self._layouts = np.stack(
            [
                np.stack([correlated_field((res, res), rng, beta=3.0) for _ in range(self.channels)])
                for _ in range(NUM_LAYOUTS)
            ]
        )
        self._textures = np.stack(
            [_texture_plane(res, t, rng) for t in range(NUM_TEXTURES)]
        )

    @property
    def sample_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.resolution, self.resolution)

    @staticmethod
    def label_of(layout: int, texture: int) -> int:
        return layout * NUM_TEXTURES + texture

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.int64]:
        if not 0 <= index < self.n:
            raise IndexError(index)
        rng = index_rng(self.seed, self.start + index)
        label = int(rng.integers(0, NUM_CLASSES))
        layout, texture = divmod(label, NUM_TEXTURES)
        res = self.resolution
        noise = np.stack(
            [correlated_field((res, res), rng, beta=1.5) for _ in range(self.channels)]
        )
        x = (
            self._layouts[layout]
            + self.texture_amp * self._textures[texture][None, :, :]
            + self.noise * noise
        )
        return x.astype(np.float32), np.int64(label)
