"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class CompileError(ReproError):
    """An accelerator compiler rejected a computation graph.

    Mirrors the paper's observed compile failures (e.g. SN30 and GroqChip
    out-of-memory at 512x512 resolution, GroqChip beyond batch size 1000).
    """

    def __init__(self, message: str, *, platform: str | None = None, reason: str | None = None):
        super().__init__(message)
        self.platform = platform
        self.reason = reason


class UnsupportedOperatorError(CompileError):
    """The target platform's toolchain does not support a required operator."""


class OutOfMemoryError(CompileError):
    """On-chip memory allocation failed during compilation."""


class ConfigError(ReproError):
    """Invalid user-facing configuration (chop factor, block size, ...)."""
