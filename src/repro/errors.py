"""Exception hierarchy shared across the repro package."""

import numbers


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class CompileError(ReproError):
    """An accelerator compiler rejected a computation graph.

    Mirrors the paper's observed compile failures (e.g. SN30 and GroqChip
    out-of-memory at 512x512 resolution, GroqChip beyond batch size 1000).

    ``deterministic`` distinguishes rejections that are a pure function of
    the plan key (the platform capability model always says no) from
    transient toolchain failures (an injected flaky compiler): only the
    former may be negatively cached forever.
    """

    deterministic = True

    def __init__(self, message: str, *, platform: str | None = None, reason: str | None = None):
        super().__init__(message)
        self.platform = platform
        self.reason = reason


class UnsupportedOperatorError(CompileError):
    """The target platform's toolchain does not support a required operator."""


class OutOfMemoryError(CompileError):
    """On-chip memory allocation failed during compilation."""


class ConfigError(ReproError):
    """Invalid user-facing configuration (chop factor, block size, ...)."""


def require_int(name: str, value, *, minimum: int = 1) -> int:
    """Validate an integral config value, returning it as a plain ``int``.

    Degenerate configurations must fail loudly with the offending value —
    historically ``cf=2.5`` passed the range check and was then silently
    truncated to 2 by ``int()``, producing a different compression ratio
    than requested.  Accepts Python and NumPy integers; rejects bools,
    floats (even integral-valued ones, to keep behaviour predictable), and
    anything non-numeric.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigError(
            f"{name} must be an integer, got {value!r} "
            f"(type {type(value).__name__})"
        )
    value = int(value)
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


class IntegrityError(ReproError):
    """A stored container failed validation (truncation, checksum mismatch).

    Raised instead of decoding garbage: a corrupted ``.dcz`` payload must
    never be silently reconstructed into wrong training data.
    """


class DeviceError(ReproError):
    """A device failed at run time (after successful compilation).

    ``transient`` distinguishes faults worth retrying (link timeouts,
    launch hiccups) from persistent ones (the device is gone).
    """

    transient = False

    def __init__(self, message: str, *, platform: str | None = None):
        super().__init__(message)
        self.platform = platform


class TransientDeviceError(DeviceError):
    """A retryable device fault; the next attempt may well succeed."""

    transient = True


class HostLinkTimeoutError(TransientDeviceError):
    """The host-device link (PCIe / exchange fabric) timed out mid-transfer."""


class LaunchFailureError(TransientDeviceError):
    """The device rejected a program launch (queue full, driver hiccup)."""


class DeviceLostError(DeviceError):
    """The device dropped off the bus; it will not come back this run."""


class IntegrityFault(TransientDeviceError):
    """An integrity guard caught silently corrupted data before it was served.

    Unlike :class:`IntegrityError` (a *stored* container failed validation),
    an ``IntegrityFault`` means a *live* result failed an ABFT checksum or a
    stage-boundary digest: the device answered, but wrongly.  It subclasses
    :class:`TransientDeviceError` deliberately — recomputing is the correct
    response to a bit-flip, so detection feeds the existing retry ladder and
    circuit breakers instead of needing a parallel recovery path.

    ``site`` names the guard that fired (``"gemm"``, ``"device_output"``,
    ``"snapshot"``).
    """

    def __init__(self, message: str, *, platform: str | None = None, site: str = "device_output"):
        super().__init__(message, platform=platform)
        self.site = site


class ContainerFormatError(IntegrityError, ConfigError):
    """Bytes handed to the container loader are not a DCZ container at all.

    Dual-typed on purpose: historically a bad magic was a :class:`ConfigError`
    (the caller passed the wrong file), but under the single-bit-flip fuzz
    contract any corrupted load must surface as :class:`IntegrityError`.
    Subclassing both keeps existing callers and the fuzz contract honest.
    """


class ShedError(ReproError):
    """The serving layer refused a request instead of serving it late.

    Raised (or attached to a :class:`~repro.serve.overload.ShedRequest`)
    by deadline-aware admission control, bounded-queue backpressure, and
    graceful drain.  Shedding is always explicit — a request is never
    silently dropped — and ``reason`` says which policy fired
    (``"deadline"``, ``"queue_full"``, ``"expired"``, ``"draining"``, or
    ``"tenant_quota"`` from the fleet router's weighted-fair admission).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "deadline",
        deadline: float | None = None,
        predicted_finish: float | None = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.deadline = deadline
        self.predicted_finish = predicted_finish
