"""Weight compression (paper future work: model-footprint reduction).

``compress_state_dict`` packs every parameter of a state dict into the
DCZ container format through a shape-adaptive DCT+Chop compressor
(parameters are viewed as 2-D planes and padded to the block grid);
``decompress_state_dict`` restores a loadable state dict.  BatchNorm
running statistics and other 1-D buffers are tiny and numerically
sensitive, so anything under ``min_elements`` is stored raw.
"""

from __future__ import annotations

import numpy as np

from repro.core import container
from repro.core.padded import AdaptiveCompressor
from repro.errors import ConfigError

_RAW_KEY = "__raw__"
MIN_ELEMENTS_DEFAULT = 512


def _as_plane(arr: np.ndarray) -> np.ndarray:
    if arr.ndim == 0:
        return arr.reshape(1, 1)
    if arr.ndim == 1:
        return arr.reshape(1, -1)
    return arr.reshape(arr.shape[0], -1)


def compress_state_dict(
    state: dict[str, np.ndarray],
    *,
    cf: int = 6,
    min_elements: int = MIN_ELEMENTS_DEFAULT,
) -> dict[str, dict]:
    """Compress a state dict; returns {name: entry} with DCZ blobs.

    Small tensors (below ``min_elements``) are stored raw — compressing a
    64-entry bias would cost more in padding than it saves.
    """
    adaptive = AdaptiveCompressor(cf=cf)
    out: dict[str, dict] = {}
    for name, arr in state.items():
        arr = np.asarray(arr)
        if arr.size < min_elements or not np.issubdtype(arr.dtype, np.floating):
            out[name] = {_RAW_KEY: arr.copy(), "shape": arr.shape}
            continue
        plane = _as_plane(arr.astype(np.float32))
        comp = adaptive.for_shape(plane.shape)
        out[name] = {
            "blob": container.pack(plane, comp),
            "shape": arr.shape,
        }
    return out


def decompress_state_dict(packed: dict[str, dict]) -> dict[str, np.ndarray]:
    """Inverse of :func:`compress_state_dict`."""
    out: dict[str, np.ndarray] = {}
    for name, entry in packed.items():
        if _RAW_KEY in entry:
            out[name] = entry[_RAW_KEY].copy()
            continue
        plane, _header = container.unpack(entry["blob"])
        out[name] = plane.reshape(entry["shape"])
    return out


def state_dict_ratio(state: dict[str, np.ndarray], packed: dict[str, dict]) -> float:
    """End-to-end bytes(original)/bytes(packed) including raw entries."""
    original = sum(np.asarray(v).nbytes for v in state.values())
    stored = 0
    for entry in packed.values():
        if _RAW_KEY in entry:
            stored += entry[_RAW_KEY].nbytes
        else:
            stored += len(entry["blob"])
    if stored == 0:
        raise ConfigError("empty state dict")
    return original / stored
