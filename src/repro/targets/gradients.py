"""Gradient compression (paper future work; cf. QSGD [11], 3LC [21]).

Gradients are what distributed training communicates; compressing them
cuts interconnect cost.  :class:`GradientCompressor` round-trips each
parameter's gradient through a DCT+Chop compressor (gradients are
reshaped to a 2-D plane, padded to the block grid) and tracks the bytes
a compressed all-reduce would have moved.

Two corrections are required for convergence, both on by default:

* **Error feedback** (EF-SGD): keep the per-gradient compression residual
  and fold it into the next step's gradient.
* **Randomized shift**: DCT+Chop is a *fixed* linear projection, so even
  with error feedback the discarded subspace would never be transmitted —
  the model could only converge to the projection of the optimum.  A
  per-step pseudorandom circular shift of the flattened gradient varies
  the projection, so over steps every component passes (the same idea as
  the randomized transforms in sketched/rotated SGD schemes).

Tiny tensors (biases, norm scales) are sent raw: padding a 64-entry bias
to an 8x8 block grid would cost more than it saves.
"""

from __future__ import annotations

import numpy as np

from repro.core.padded import AdaptiveCompressor
from repro.nn.module import Parameter
from repro.nn.optim import Optimizer
from repro.tensor import no_grad

MIN_ELEMENTS_DEFAULT = 64


def _as_plane(grad: np.ndarray) -> np.ndarray:
    """View an arbitrary-rank gradient as a 2-D plane (out x rest)."""
    if grad.ndim == 0:
        return grad.reshape(1, 1)
    if grad.ndim == 1:
        return grad.reshape(1, -1)
    return grad.reshape(grad.shape[0], -1)


class GradientCompressor:
    """Round-trips gradients in place; accounts communicated bytes."""

    def __init__(
        self,
        *,
        cf: int = 4,
        method: str = "dc",
        error_feedback: bool = True,
        randomize: bool = True,
        min_elements: int = MIN_ELEMENTS_DEFAULT,
        seed: int = 0,
    ) -> None:
        self.compressor = AdaptiveCompressor(method=method, cf=cf)
        self.error_feedback = error_feedback
        self.randomize = randomize
        self.min_elements = min_elements
        self.bytes_raw = 0
        self.bytes_compressed = 0
        self._residuals: dict = {}
        self._step = 0
        self._seed = seed

    def begin_step(self) -> None:
        """Advance the randomized-shift schedule (one call per exchange)."""
        self._step += 1

    def compress_array(self, key, grad: np.ndarray) -> np.ndarray:
        """Round-trip one gradient array; ``key`` identifies its residual slot.

        Small arrays pass through raw (full bytes charged both ways).
        """
        if grad.size < self.min_elements:
            self.bytes_raw += grad.nbytes
            self.bytes_compressed += grad.nbytes
            return grad
        g = grad
        if self.error_feedback:
            residual = self._residuals.get(key)
            if residual is not None:
                g = g + residual
        flat = g.reshape(-1)
        if self.randomize:
            shift_rng = np.random.default_rng((self._seed, self._step, hash(key) & 0xFFFF))
            offset = int(shift_rng.integers(0, flat.size))
            flat = np.roll(flat, offset)
        plane = _as_plane(flat.reshape(g.shape[0], -1) if g.ndim >= 2 else flat)
        comp = self.compressor.for_shape(plane.shape)
        packed = comp.compress(plane)
        rec_flat = comp.decompress(packed).numpy().reshape(-1)
        if self.randomize:
            rec_flat = np.roll(rec_flat, -offset)
        reconstructed = rec_flat.reshape(g.shape)
        self.bytes_raw += grad.nbytes
        self.bytes_compressed += packed.nbytes
        if self.error_feedback:
            self._residuals[key] = g - reconstructed
        return reconstructed

    def compress_(self, params: list[Parameter]) -> None:
        """Replace each ``p.grad`` with its chop reconstruction."""
        self.begin_step()
        with no_grad():
            for p in params:
                if p.grad is None:
                    continue
                p.grad = self.compress_array(id(p), p.grad)

    @property
    def observed_ratio(self) -> float:
        """Gradient-traffic ratio achieved so far."""
        if self.bytes_compressed == 0:
            return 1.0
        return self.bytes_raw / self.bytes_compressed


class CompressedOptimizer(Optimizer):
    """Wrap any optimiser so gradients are compressed before each step.

    This is the single-node analogue of compressed all-reduce: the model
    updates from reconstructed gradients, exactly what every worker would
    apply after a compressed exchange.
    """

    def __init__(
        self,
        inner: Optimizer,
        *,
        cf: int = 4,
        method: str = "dc",
        error_feedback: bool = True,
        randomize: bool = True,
        min_elements: int = MIN_ELEMENTS_DEFAULT,
    ) -> None:
        super().__init__(inner.params, inner.lr)
        self.inner = inner
        self.gradient_compressor = GradientCompressor(
            cf=cf,
            method=method,
            error_feedback=error_feedback,
            randomize=randomize,
            min_elements=min_elements,
        )

    def step(self) -> None:
        self.gradient_compressor.compress_(self.params)
        self.inner.step()

    def zero_grad(self) -> None:
        self.inner.zero_grad()

    @property
    def observed_ratio(self) -> float:
        return self.gradient_compressor.observed_ratio
