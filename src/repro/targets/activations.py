"""Activation compression (paper future work; cf. ActNN [13], COMET [19]).

:class:`ActivationCompression` wraps a module and round-trips its output
through a DCT+Chop compressor during training, simulating a pipeline that
stores activations compressed between the forward and backward pass.  The
roundtrip is two matmuls, so gradients flow through it and training sees
exactly the reconstruction the backward pass would read from compressed
storage.  In eval mode activations pass through untouched.

Shapes vary per layer, so an :class:`~repro.core.padded.AdaptiveCompressor`
compiles one padded compressor per distinct spatial size.
"""

from __future__ import annotations

from repro.core.padded import AdaptiveCompressor
from repro.nn.module import Module
from repro.tensor import Tensor


class ActivationCompression(Module):
    """Wrap ``inner`` so its training-time outputs are chop-compressed."""

    def __init__(self, inner: Module, *, cf: int = 4, method: str = "dc") -> None:
        super().__init__()
        self.inner = inner
        self.compressor = AdaptiveCompressor(method=method, cf=cf)
        self.bytes_raw = 0
        self.bytes_compressed = 0

    def forward(self, x: Tensor) -> Tensor:
        out = self.inner(x)
        if not self.training or out.ndim < 2:
            return out
        comp = self.compressor.for_shape(out.shape)
        compressed = comp.compress(out)
        self.bytes_raw += out.nbytes
        self.bytes_compressed += compressed.nbytes
        return comp.decompress(compressed)

    @property
    def observed_ratio(self) -> float:
        """Aggregate activation-storage ratio over the run so far."""
        if self.bytes_compressed == 0:
            return 1.0
        return self.bytes_raw / self.bytes_compressed


def compress_activations(model: Module, *, cf: int = 4, layer_types: tuple = None) -> list[ActivationCompression]:
    """Wrap matching sub-modules of ``model`` in-place.

    ``layer_types`` defaults to convolution layers (the dominant
    activation producers in the four evaluation networks).  Returns the
    wrappers so callers can read the observed ratios.
    """
    from repro.nn.layers import Conv2d, ConvTranspose2d

    if layer_types is None:
        layer_types = (Conv2d, ConvTranspose2d)

    wrapped: list[ActivationCompression] = []

    def visit(module: Module) -> None:
        for name, value in list(vars(module).items()):
            if isinstance(value, layer_types):
                wrapper = ActivationCompression(value, cf=cf)
                setattr(module, name, wrapper)
                wrapped.append(wrapper)
            elif isinstance(value, ActivationCompression):
                continue
            elif isinstance(value, Module):
                visit(value)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, layer_types):
                        wrapper = ActivationCompression(item, cf=cf)
                        value[i] = wrapper
                        wrapped.append(wrapper)
                    elif isinstance(item, Module):
                        visit(item)

    visit(model)
    return wrapped
