"""Simulated data-parallel training with compressed gradient exchange.

The paper motivates compression partly by "decreasing data transfer costs
in distributed training".  This module simulates synchronous data-parallel
SGD across N logical workers on one process: the global batch is sharded,
each worker computes gradients on its shard against a shared parameter
copy, and gradients are averaged through a (optionally compressed)
all-reduce.  A :class:`CommunicationLog` accounts the bytes a ring
all-reduce would move per step, with and without compression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.tensor import Tensor, no_grad
from repro.targets.gradients import MIN_ELEMENTS_DEFAULT, GradientCompressor


@dataclass
class CommunicationLog:
    """Per-step byte accounting of the gradient exchange."""

    steps: int = 0
    raw_bytes: int = 0
    exchanged_bytes: int = 0
    per_step: list[int] = field(default_factory=list)

    @property
    def savings_ratio(self) -> float:
        if self.exchanged_bytes == 0:
            return 1.0
        return self.raw_bytes / self.exchanged_bytes


class DataParallelSimulator:
    """Synchronous data-parallel training on ``world_size`` logical workers.

    Parameters
    ----------
    model, loss_fn, optimizer:
        The shared replica; the simulator keeps one physical copy and
        replays each worker's shard against it, which is numerically
        identical to N replicas with synchronized parameters.
    world_size:
        Number of logical workers; the global batch must shard evenly.
    gradient_cf:
        When set, each worker's contribution is chop-compressed before the
        exchange (the compressed all-reduce), and the log records the
        reduced traffic.
    error_feedback:
        Keep per-(worker, parameter) compression residuals and fold them
        into the next step's gradient (EF-SGD), compensating the chop's
        projection bias.
    """

    def __init__(
        self,
        model: Module,
        loss_fn,
        optimizer: Optimizer,
        *,
        world_size: int = 4,
        gradient_cf: int | None = None,
        error_feedback: bool = True,
        min_elements: int = MIN_ELEMENTS_DEFAULT,
    ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.world_size = world_size
        self.compressor = (
            GradientCompressor(
                cf=gradient_cf,
                error_feedback=error_feedback,
                min_elements=min_elements,
            )
            if gradient_cf is not None
            else None
        )
        self.log = CommunicationLog()

    # ------------------------------------------------------------------
    def _worker_gradients(self, x: np.ndarray, y) -> tuple[list[np.ndarray], float]:
        """Gradient list for one worker's shard on the shared replica."""
        self.model.zero_grad()
        out = self.model(Tensor(x))
        loss = self.loss_fn(out, y)
        loss.backward()
        grads = [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in self.optimizer.params
        ]
        return grads, loss.item()

    def _exchange(self, worker_grads: list[list[np.ndarray]]) -> list[np.ndarray]:
        """Average worker gradients, optionally through compression."""
        averaged = []
        n_params = len(worker_grads[0])
        if self.compressor is not None:
            self.compressor.begin_step()
            before_raw = self.compressor.bytes_raw
            before_packed = self.compressor.bytes_compressed
        for i in range(n_params):
            contributions = []
            for w, grads in enumerate(worker_grads):
                g = grads[i]
                if self.compressor is not None:
                    with no_grad():
                        g = self.compressor.compress_array((w, i), g)
                else:
                    self.log.raw_bytes += g.nbytes
                    self.log.exchanged_bytes += g.nbytes
                contributions.append(g)
            averaged.append(np.mean(contributions, axis=0))
        if self.compressor is not None:
            self.log.raw_bytes += self.compressor.bytes_raw - before_raw
            self.log.exchanged_bytes += self.compressor.bytes_compressed - before_packed
        return averaged

    def step(self, x: np.ndarray, y) -> float:
        """One synchronous data-parallel step on a global batch.

        Returns the mean worker loss.
        """
        batch = len(x)
        if batch % self.world_size:
            raise ValueError(
                f"global batch {batch} does not shard across {self.world_size} workers"
            )
        shard = batch // self.world_size
        y_arr = np.asarray(y)
        worker_grads = []
        losses = []
        step_start = self.log.exchanged_bytes
        for w in range(self.world_size):
            sl = slice(w * shard, (w + 1) * shard)
            grads, loss = self._worker_gradients(x[sl], y_arr[sl])
            worker_grads.append(grads)
            losses.append(loss)
        averaged = self._exchange(worker_grads)
        for p, g in zip(self.optimizer.params, averaged):
            p.grad = g
        self.optimizer.step()
        self.log.steps += 1
        self.log.per_step.append(self.log.exchanged_bytes - step_start)
        return float(np.mean(losses))

    def train_epoch(self, loader) -> float:
        self.model.train()
        losses = [self.step(x, y) for x, y in loader]
        return float(np.mean(losses))
