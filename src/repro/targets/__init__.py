"""Future-work compression targets (paper Fig. 1 / Section 6).

The paper evaluates *training data* compression because accelerator
toolchains did not yet expose activations and gradients.  This package
implements the remaining targets the paper anticipates, against the same
DCT+Chop core, so the designs are ready when those APIs land:

* :mod:`repro.targets.activations` — compress layer outputs during the
  forward pass (ActNN/COMET-style training-memory reduction).
* :mod:`repro.targets.gradients`   — compress gradients before the
  optimiser/communication step (QSGD/3LC-style).
* :mod:`repro.targets.weights`     — compress model parameters for
  storage/deployment.
* :mod:`repro.targets.distributed` — simulated data-parallel training
  quantifying communication-byte savings from gradient compression.
"""

from repro.targets.activations import ActivationCompression, compress_activations
from repro.targets.gradients import GradientCompressor, CompressedOptimizer
from repro.targets.weights import compress_state_dict, decompress_state_dict, state_dict_ratio
from repro.targets.distributed import DataParallelSimulator, CommunicationLog

__all__ = [
    "ActivationCompression",
    "compress_activations",
    "GradientCompressor",
    "CompressedOptimizer",
    "compress_state_dict",
    "decompress_state_dict",
    "state_dict_ratio",
    "DataParallelSimulator",
    "CommunicationLog",
]
