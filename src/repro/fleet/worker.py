"""One fleet worker: an independent serving process and failure domain.

A :class:`FleetWorker` owns a whole
:class:`~repro.serve.service.CompressionService` — its own plan cache,
batcher queue, scheduler instances (leased from the
:class:`~repro.accel.multichip.InstancePool`), recovery log and
breakers.  Nothing is shared between workers, which is the point: when
one crashes, the blast radius is exactly its queue and its cache, and
the router's job is to reroute the former and hand off a snapshot of the
latter.

The worker also keeps the bookkeeping the fleet's recovery contract is
asserted against: how often it crashed or hung, its cache hit rate at
the moment it died, and the fresh cache it rejoined with (whose
counters, starting from zero, *are* the post-handoff hit-rate window).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.multichip import InstanceLease
from repro.fleet.faults import WorkerFault
from repro.serve.plan_cache import CompiledPlanCache
from repro.serve.service import CompressionService

#: Lifecycle states a worker moves through.  ``quarantined`` is the
#: integrity bench: off the ring for a scrub, rejoining on a timer.
WORKER_STATES = ("up", "down", "quarantined", "retired")


@dataclass
class FleetWorker:
    """One failure domain in the fleet."""

    name: str
    platforms: tuple[str, ...]
    leases: list[InstanceLease]
    service: CompressionService
    state: str = "up"
    n_served: int = 0                  # responses this worker produced
    n_crashes: int = 0                 # crash + slow_restart faults absorbed
    n_hangs: int = 0
    n_quarantines: int = 0             # integrity benches served
    pending_fault: WorkerFault | None = None
    restart_at: int | None = None      # fleet ordinal at which it rejoins
    # Guard-detection tally at the end of the last quarantine scrub: the
    # quarantine policy judges the *delta* past this floor, so a worker
    # that served its bench starts its next strike count from zero.
    integrity_floor: int = 0
    pre_crash_hit_rate: float | None = None
    rejoin_cache: CompiledPlanCache | None = None   # fresh cache after handoff
    # Shed/failure/degraded records harvested from services this worker
    # lost to crashes (the live service keeps its own lists).
    archived_shed: list = field(default_factory=list)
    archived_failures: list = field(default_factory=list)
    archived_degraded: set = field(default_factory=set)

    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        return self.state == "up"

    @property
    def depth(self) -> int:
        """Queued requests (0 while down/retired — nothing can queue)."""
        return self.service.batcher.depth if self.up else 0

    @property
    def cache_hit_rate(self) -> float:
        return self.service.cache.snapshot().hit_rate

    def integrity_delta(self) -> int:
        """Guard detections on this worker since its last quarantine."""
        return max(0, self.service.integrity_faults - self.integrity_floor)

    def post_rejoin_hit_rate(self) -> float | None:
        """Hit rate of the post-handoff cache, or ``None`` before any
        post-rejoin lookup (the fresh cache's counters start at zero)."""
        if self.rejoin_cache is None:
            return None
        snap = self.rejoin_cache.snapshot()
        if snap.lookups == 0:
            return None
        return snap.hit_rate

    # ------------------------------------------------------------------
    def take_queued(self):
        """Pull the in-flight (queued) requests out for crash replay."""
        return self.service.batcher.drain_pending()

    def archive_service(self) -> None:
        """Stash the dying service's accounting before it is replaced."""
        self.archived_shed.extend(self.service.shed)
        self.archived_failures.extend(self.service.failures)
        self.archived_degraded |= self.service.degraded_rids

    def all_shed(self) -> list:
        return [*self.archived_shed, *self.service.shed]

    def all_failures(self) -> list:
        return [*self.archived_failures, *self.service.failures]

    def all_degraded(self) -> set:
        return self.archived_degraded | self.service.degraded_rids
