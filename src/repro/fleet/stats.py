"""Fleet-level statistics: per-tenant and per-worker accounting.

The single-service :class:`~repro.serve.stats.ServerStats` summarizes
one event loop; :class:`FleetStats` summarizes a fleet of them plus the
router's own decisions — routing spills, crash replays, cache handoffs,
quota refusals, autoscale actions — with every request attributed to its
tenant.  Latency percentiles per tenant come from bounded seeded
reservoirs, so the table costs constant memory at any trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Reservoir
from repro.serve.stats import LATENCY_RESERVOIR_CAPACITY


def tenant_reservoir() -> Reservoir:
    return Reservoir(capacity=LATENCY_RESERVOIR_CAPACITY, seed=0)


@dataclass
class TenantStats:
    """One tenant's view of the trace: full accounting plus latency."""

    tenant: str
    n_requests: int = 0                # demand: requests carrying this tenant
    n_served: int = 0
    n_shed: int = 0                    # total sheds (workers + router quota)
    n_quota_shed: int = 0              # the router's tenant_quota subset
    n_failed: int = 0
    n_degraded: int = 0
    latency: Reservoir = field(default_factory=tenant_reservoir, repr=False)

    @property
    def accounted(self) -> int:
        return self.n_served + self.n_shed + self.n_failed

    @property
    def p50_latency_s(self) -> float:
        return self.latency.percentile(50)

    @property
    def p95_latency_s(self) -> float:
        return self.latency.percentile(95)

    def served_fraction(self, fleet_served: int) -> float:
        return self.n_served / fleet_served if fleet_served else 0.0


@dataclass
class WorkerStats:
    """One worker row in the fleet table."""

    name: str
    state: str                         # "up" | "down" | "retired"
    platforms: tuple[str, ...] = ()
    n_served: int = 0                  # responses attributed to this worker
    n_crashes: int = 0                 # crash + slow_restart faults absorbed
    n_hangs: int = 0
    n_quarantines: int = 0             # integrity benches served
    integrity_faults: int = 0          # guard detections on its dispatches
    cache_hit_rate: float = 0.0        # current service's cache, cumulative
    pre_crash_hit_rate: float | None = None    # last crash: rate at death
    post_rejoin_hit_rate: float | None = None  # last crash: rate since handoff


@dataclass
class FleetStats:
    """One fleet trace replay, summarized."""

    n_requests: int = 0
    n_served: int = 0
    n_shed: int = 0
    n_failed: int = 0
    makespan_s: float = 0.0
    tenants: dict[str, TenantStats] = field(default_factory=dict)
    workers: list[WorkerStats] = field(default_factory=list)
    n_spills: int = 0                  # bounded-load reroutes off the primary owner
    n_replays: int = 0                 # in-flight requests replayed after crashes
    n_crashes: int = 0
    n_hangs: int = 0
    n_handoffs: int = 0                # warm cache snapshots restored
    n_quarantines: int = 0             # workers benched for integrity faults
    n_quarantine_rejoins: int = 0      # benches served out (scrub + rejoin)
    n_quarantine_interrupted: int = 0  # benches cut short by a worker fault
    n_integrity_faults: int = 0        # guard detections across all dispatches
    n_scrub_dropped: int = 0           # plans convicted and dropped by scrubs
    n_quota_shed: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    autoscale_events: list = field(default_factory=list)   # [AutoscaleEvent]
    final_live_workers: int = 0

    # ------------------------------------------------------------------
    @property
    def accounted(self) -> int:
        return self.n_served + self.n_shed + self.n_failed

    @property
    def throughput_rps(self) -> float:
        return self.n_served / self.makespan_s if self.makespan_s > 0 else 0.0

    def tenant(self, name: str) -> TenantStats:
        if name not in self.tenants:
            self.tenants[name] = TenantStats(tenant=name)
        return self.tenants[name]

    # ------------------------------------------------------------------
    def format_table(self) -> str:
        rows: list[tuple[str, str]] = [
            (
                "requests",
                f"{self.n_requests} (served {self.n_served}, shed {self.n_shed}, "
                f"failed {self.n_failed})",
            ),
            ("makespan", f"{self.makespan_s * 1e3:.3f} ms modelled"),
            ("throughput", f"{self.throughput_rps:,.0f} req/s modelled"),
            (
                "routing",
                f"{self.n_spills} bounded-load spills, {self.n_replays} crash replays",
            ),
            (
                "failure domains",
                f"{self.n_crashes} crashes, {self.n_hangs} hangs, "
                f"{self.n_handoffs} warm handoffs",
            ),
            (
                "integrity",
                f"{self.n_integrity_faults} guard detections, "
                f"{self.n_quarantines} quarantines "
                f"({self.n_quarantine_rejoins} rejoined), "
                f"{self.n_scrub_dropped} plans scrubbed",
            ),
            ("live workers", str(self.final_live_workers)),
        ]
        if self.shed_by_reason:
            reasons = ", ".join(
                f"{r}={c}" for r, c in sorted(self.shed_by_reason.items())
            )
            rows.append(("shed by reason", reasons))
        if self.autoscale_events:
            moves = ", ".join(
                f"{e.action} {e.worker}@{e.ordinal}" for e in self.autoscale_events
            )
            rows.append(("autoscale", moves))
        for name in sorted(self.tenants):
            t = self.tenants[name]
            rows.append(
                (
                    f"tenant {name}",
                    f"{t.n_served}/{t.n_requests} served "
                    f"(shed {t.n_shed}, quota {t.n_quota_shed}, failed {t.n_failed}), "
                    f"p95 {t.p95_latency_s * 1e3:.3f} ms",
                )
            )
        for w in self.workers:
            warm = ""
            if w.pre_crash_hit_rate is not None and w.post_rejoin_hit_rate is not None:
                warm = (
                    f", handoff {w.pre_crash_hit_rate:.1%} -> "
                    f"{w.post_rejoin_hit_rate:.1%}"
                )
            rows.append(
                (
                    f"worker {w.name}",
                    f"[{w.state}] {w.n_served} served, cache {w.cache_hit_rate:.1%}"
                    + (
                        f", {w.n_crashes} crash(es)" if w.n_crashes else ""
                    )
                    + (f", {w.n_hangs} hang(s)" if w.n_hangs else "")
                    + (
                        f", {w.n_quarantines} quarantine(s)"
                        if w.n_quarantines
                        else ""
                    )
                    + warm,
                )
            )
        width = max(len(label) for label, _ in rows)
        lines = ["fleet stats"] + [f"  {label:<{width}}  {value}" for label, value in rows]
        return "\n".join(lines)
