"""Consistent-hash ring with bounded-load spill.

Requests are routed to workers by their plan identity (the
:class:`~repro.serve.batcher.ServiceKey`, which maps 1:1 onto the
:class:`~repro.accel.PlanKey` a worker compiles and caches) rather than
round-robin: all traffic for one compiled plan lands on one worker, so
each worker's :class:`~repro.serve.plan_cache.CompiledPlanCache` only
ever holds its own hash range and its hit rate stays as high as a
single-service deployment's.

Each worker owns ``vnodes`` points on a 64-bit ring (BLAKE2b of
``"name#i"``), which keeps ranges balanced and makes the reshuffle on a
crash proportional to the dead worker's share only — the classic
consistent-hashing property.  Routing is *bounded-load*: the primary
owner is skipped while it is at capacity, spilling to the next distinct
worker clockwise (Google's "consistent hashing with bounded loads"), so
a hot key range degrades into slightly worse cache affinity instead of
an unbounded queue.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ConfigError


def stable_hash(text: str) -> int:
    """Deterministic 64-bit hash (never Python's seeded ``hash``)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring mapping keys to named workers."""

    def __init__(self, vnodes: int = 32) -> None:
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []   # sorted (hash, worker)
        self._members: set[str] = set()

    # ------------------------------------------------------------------
    def add(self, worker: str) -> None:
        """Insert ``worker``'s vnodes (no-op if already present)."""
        if worker in self._members:
            return
        self._members.add(worker)
        for i in range(self.vnodes):
            point = (stable_hash(f"{worker}#{i}"), worker)
            bisect.insort(self._points, point)

    def remove(self, worker: str) -> None:
        """Drop ``worker``'s vnodes; its range flows to ring successors."""
        if worker not in self._members:
            return
        self._members.discard(worker)
        self._points = [p for p in self._points if p[1] != worker]

    def __contains__(self, worker: str) -> bool:
        return worker in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    # ------------------------------------------------------------------
    def owners(self, key: str) -> list[str]:
        """Distinct workers in ring order starting at ``key``'s successor.

        The first element is the primary owner; the rest are the spill
        order a bounded-load router walks.
        """
        if not self._points:
            return []
        h = stable_hash(key)
        start = bisect.bisect_right(self._points, (h, "￿"))
        seen: list[str] = []
        n = len(self._points)
        for off in range(n):
            worker = self._points[(start + off) % n][1]
            if worker not in seen:
                seen.append(worker)
                if len(seen) == len(self._members):
                    break
        return seen

    def primary(self, key: str) -> str | None:
        """The key's primary owner (``None`` on an empty ring)."""
        owners = self.owners(key)
        return owners[0] if owners else None

    def route(self, key: str, has_capacity=None) -> tuple[str | None, bool]:
        """Pick the worker for ``key``; returns ``(worker, spilled)``.

        ``has_capacity(worker) -> bool`` implements bounded load: owners
        are walked clockwise until one has room.  If every member is at
        capacity the primary owner is returned anyway — admission control
        downstream sheds explicitly; the ring never silently drops.
        """
        owners = self.owners(key)
        if not owners:
            return None, False
        if has_capacity is None:
            return owners[0], False
        for worker in owners:
            if has_capacity(worker):
                return worker, worker != owners[0]
        return owners[0], False
