"""Per-tenant quotas: weighted-fair admission for the fleet router.

One abusive tenant must not starve the rest.  The router attributes
every request to its :attr:`~repro.serve.batcher.Request.tenant` and,
*when the fleet is contended*, enforces weighted max-min fairness over a
sliding window of recent admissions: a tenant whose share of the window
already exceeds its weight fraction (times a small burst allowance) is
shed with reason ``"tenant_quota"`` — an explicit
:class:`~repro.errors.ShedError`, like every other refusal in this
codebase.

While the fleet is *not* contended the admission is work-conserving:
everything is admitted, so an over-weight tenant may burst into idle
capacity.  Quotas only bite when someone else would otherwise queue
behind the burst — which is exactly when fairness matters.  This layers
*above* the per-worker :class:`~repro.serve.overload.OverloadPolicy`
shedding: quota refusals happen at the router, before a request ever
reaches a worker's queue.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class TenantPolicy:
    """Knobs for weighted-fair admission.

    Parameters
    ----------
    weights:
        Tenant name -> relative weight.  A tenant's fair share of
        contended admissions is ``weight / sum(weights)``.  Tenants not
        listed get ``default_weight``.
    window:
        Sliding window length (recent admissions) the shares are measured
        over.  Short windows react fast; long windows smooth bursts.
    burst:
        Multiplicative allowance above the exact share before a tenant is
        refused (1.0 = hard cap at the share; 1.25 = 25% headroom).
    contention_depth:
        The fleet counts as *contended* while the total queued requests
        across live workers is at least this; below it admission is
        work-conserving and quotas are not consulted.
    """

    weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    window: int = 256
    burst: float = 1.25
    contention_depth: int = 32

    def __post_init__(self) -> None:
        for tenant, w in self.weights.items():
            if w <= 0:
                raise ConfigError(f"tenant {tenant!r} weight must be > 0, got {w}")
        if self.default_weight <= 0:
            raise ConfigError(f"default_weight must be > 0, got {self.default_weight}")
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.burst < 1.0:
            raise ConfigError(f"burst must be >= 1.0, got {self.burst}")
        if self.contention_depth < 1:
            raise ConfigError(
                f"contention_depth must be >= 1, got {self.contention_depth}"
            )

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def share(self, tenant: str, tenants) -> float:
        """``tenant``'s weight fraction over the given tenant population."""
        total = sum(self.weight(t) for t in set(tenants) | {tenant})
        return self.weight(tenant) / total if total > 0 else 1.0


class TenantAdmission:
    """Deterministic weighted-fair admission over a sliding window."""

    def __init__(self, policy: TenantPolicy) -> None:
        self.policy = policy
        self._window: deque[str] = deque(maxlen=policy.window)
        self._in_window: dict[str, int] = {}
        self.admitted: dict[str, int] = {}
        self.refused: dict[str, int] = {}
        self.contended_admits: dict[str, int] = {}
        self.n_contended_admits = 0
        # Highest window occupancy each tenant reached via a *contended*
        # admission — the quantity the quota bounds, recorded so a soak
        # can assert the bound held without re-deriving window history.
        self.max_contended_occupancy: dict[str, int] = {}
        self._seen: set[str] = set()

    # ------------------------------------------------------------------
    def seen_tenants(self) -> list[str]:
        return sorted(self._seen)

    def window_count(self, tenant: str) -> int:
        return self._in_window.get(tenant, 0)

    def quota_slots(self, tenant: str) -> int:
        """Window slots ``tenant`` may occupy while the fleet is contended."""
        share = self.policy.share(tenant, self._seen)
        return max(1, math.ceil(share * self.policy.window * self.policy.burst))

    # ------------------------------------------------------------------
    def admit(self, tenant: str, *, contended: bool) -> bool:
        """Decide one request; records the outcome either way.

        Uncontended admissions always pass (work-conserving) but still
        advance the window, so a burst is already "on the books" the
        moment contention starts.
        """
        self._seen.add(tenant)
        if contended and self.window_count(tenant) >= self.quota_slots(tenant):
            self.refused[tenant] = self.refused.get(tenant, 0) + 1
            return False
        if len(self._window) == self._window.maxlen:
            oldest = self._window[0]
            self._in_window[oldest] -= 1
        self._window.append(tenant)
        self._in_window[tenant] = self._in_window.get(tenant, 0) + 1
        self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
        if contended:
            self.contended_admits[tenant] = self.contended_admits.get(tenant, 0) + 1
            self.n_contended_admits += 1
            self.max_contended_occupancy[tenant] = max(
                self.max_contended_occupancy.get(tenant, 0),
                self.window_count(tenant),
            )
        return True

    # ------------------------------------------------------------------
    def contended_fraction(self, tenant: str) -> float:
        """``tenant``'s fraction of admissions made while contended."""
        if self.n_contended_admits == 0:
            return 0.0
        return self.contended_admits.get(tenant, 0) / self.n_contended_admits
