"""The fleet router: consistent-hash routing over worker failure domains.

:class:`FleetRouter` runs N independent
:class:`~repro.serve.service.CompressionService` workers — each its own
failure domain with a private plan cache, batcher queue and scheduler
instances leased from an :class:`~repro.accel.multichip.InstancePool` —
and replays a multi-tenant trace through them on the modelled clock:

* **Routing** is consistent-hash by plan key over a
  :class:`~repro.fleet.ring.HashRing` with bounded-load spill: all
  traffic for one compiled plan lands on one worker (cache affinity)
  unless that worker is at ``spill_depth``, in which case it spills to
  the next ring owner.
* **Tenant isolation**: with a :class:`~repro.fleet.tenants.TenantPolicy`
  attached, weighted-fair admission refuses over-quota tenants while the
  fleet is contended (reason ``"tenant_quota"``) — layered *above* each
  worker's own :class:`~repro.serve.overload.OverloadPolicy` shedding.
* **Failure domains**: a seeded
  :class:`~repro.fleet.faults.WorkerFaultPlan` crashes or hangs workers
  mid-trace.  The ring reroutes the dead worker's hash range; its queued
  (in-flight) requests are pulled out *before* they were ever served and
  replayed elsewhere — each request is served at most once, so replay is
  dedup-safe and responses stay bit-identical to host compute.
* **Warm handoff**: the router snapshots every live worker's
  :class:`~repro.serve.plan_cache.CompiledPlanCache` every
  ``snapshot_interval`` requests; a crashed worker's replacement
  restores the last snapshot (LRU order, negative entries and their
  remaining TTLs included) so it rejoins warm instead of cold.
* **Autoscaling**: an optional
  :class:`~repro.fleet.autoscale.AutoscalePolicy` grows the fleet from
  the instance pool under queue/p95 pressure and drains + retires the
  emptiest worker when idle.
* **Observability** (PR 8): with a tracer attached the router mints one
  :class:`~repro.obs.context.TraceContext` per request and stamps it on
  every hop (initial routing, bounded-load spill, post-crash replay), so
  a request is one cross-worker span tree rooted at a ``fleet.request``
  span whose pre-allocated ID the serving worker parents onto; with an
  :class:`~repro.obs.slo.SLOMonitor` attached (``slo=``) the router
  feeds it quota sheds and no-worker failures while each worker feeds
  served/shed/failed outcomes and breaker transitions.

Everything runs on modelled time and a seeded trace, so a fleet replay —
crashes, spills, handoffs and all — is deterministic end to end.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.accel.multichip import InstancePool, node_size
from repro.errors import ConfigError, DeviceLostError, ShedError
from repro.faults import corrupt_snapshot
from repro.fleet.autoscale import AutoscaleEvent, AutoscalePolicy
from repro.fleet.faults import WorkerFault, WorkerFaultPlan
from repro.fleet.quarantine import QuarantinePolicy
from repro.fleet.ring import HashRing
from repro.fleet.stats import FleetStats, WorkerStats, tenant_reservoir
from repro.fleet.tenants import TenantAdmission, TenantPolicy
from repro.fleet.worker import FleetWorker
from repro.integrity import policy as _integrity
from repro.obs.context import TraceContext
from repro.obs.metrics import get_registry
from repro.resilience.log import RecoveryLog
from repro.serve.batcher import Request, ServiceKey
from repro.serve.overload import OverloadPolicy, ShedRequest
from repro.serve.plan_cache import PlanCacheSnapshot
from repro.serve.service import CompressionService, FailedRequest, Response

#: Modelled latencies kept for the autoscaler's p95 signal.
_RECENT_LATENCY_WINDOW = 256


def route_key(key: ServiceKey) -> str:
    """The string hashed onto the ring: the full plan identity."""
    return (
        f"{key.channels}x{key.height}x{key.width}"
        f"/{key.method}/cf{key.cf}/s{key.s}/b{key.block}"
    )


class FleetRouter:
    """Route a multi-tenant trace across a fleet of service workers."""

    def __init__(
        self,
        n_workers: int = 4,
        *,
        worker_platforms: tuple[str, ...] = ("ipu", "a100"),
        pool: InstancePool | None = None,
        vnodes: int = 32,
        spill_depth: int = 16,
        tenant_policy: TenantPolicy | None = None,
        overload: OverloadPolicy | None = None,
        fault_plan: WorkerFaultPlan | None = None,
        autoscale: AutoscalePolicy | None = None,
        quarantine: QuarantinePolicy | None = None,
        snapshot_interval: int = 64,
        max_batch: int = 8,
        max_wait: float = 0.002,
        policy: str = "least-loaded",
        cache_capacity: int = 64,
        negative_ttl: int | None = None,
        log_max_events: int | None = 256,
        tracer=None,
        registry=None,
        slo=None,
    ) -> None:
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        if not worker_platforms:
            raise ConfigError("worker_platforms must name at least one platform")
        if spill_depth < 1:
            raise ConfigError(f"spill_depth must be >= 1, got {spill_depth}")
        if snapshot_interval < 0:
            raise ConfigError(
                f"snapshot_interval must be >= 0, got {snapshot_interval}"
            )
        if autoscale is not None and not (
            autoscale.min_workers <= n_workers <= autoscale.max_workers
        ):
            raise ConfigError(
                f"n_workers {n_workers} outside autoscale bounds "
                f"[{autoscale.min_workers}, {autoscale.max_workers}]"
            )
        self.worker_platforms = tuple(worker_platforms)
        self.spill_depth = spill_depth
        self.fault_plan = fault_plan
        self.autoscale = autoscale
        self.quarantine = quarantine
        self.snapshot_interval = snapshot_interval
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.policy = policy
        self.cache_capacity = cache_capacity
        self.negative_ttl = negative_ttl
        self.log_max_events = log_max_events
        self.overload = overload
        self.tracer = tracer
        self.slo = slo
        self._registry = registry if registry is not None else get_registry()
        # Pool sized so the fleet can reach its ceiling (autoscale max, or
        # the fixed size) with one leased instance per platform per worker.
        ceiling = autoscale.max_workers if autoscale is not None else n_workers
        self.pool = (
            pool
            if pool is not None
            else InstancePool(
                {p: max(1, math.ceil(ceiling / node_size(p))) for p in self.worker_platforms}
            )
        )
        self.ring = HashRing(vnodes=vnodes)
        self.workers: dict[str, FleetWorker] = {}
        self.admission = (
            TenantAdmission(tenant_policy) if tenant_policy is not None else None
        )
        reg = self._registry
        self._m_requests = reg.counter(
            "repro_fleet_requests_total", help="requests routed, by worker"
        )
        self._m_spills = reg.counter(
            "repro_fleet_spills_total",
            help="bounded-load reroutes off the primary ring owner",
        )
        self._m_replays = reg.counter(
            "repro_fleet_replays_total",
            help="in-flight requests replayed after a worker fault",
        )
        self._m_crashes = reg.counter(
            "repro_fleet_worker_crashes_total", help="worker faults fired, by kind"
        )
        self._m_handoffs = reg.counter(
            "repro_fleet_handoffs_total",
            help="plan-cache snapshots restored into replacement workers",
        )
        self._m_autoscale = reg.counter(
            "repro_fleet_autoscale_total", help="autoscale actions taken, by action"
        )
        self._m_workers = reg.gauge(
            "repro_fleet_workers", help="live workers in the fleet"
        )
        # Quarantine instruments exist only when a policy is attached, so
        # integrity-free fleets leave no trace in the metric dump.
        self._m_quarantines = self._m_quarantine_rejoins = None
        self._m_quarantine_scrubbed = None
        if quarantine is not None:
            self._m_quarantines = reg.counter(
                "repro_quarantine_total",
                help="workers benched for repeated integrity faults, by worker",
            )
            self._m_quarantine_rejoins = reg.counter(
                "repro_quarantine_rejoins_total",
                help="quarantined workers that served their bench and rejoined",
            )
            self._m_quarantine_scrubbed = reg.counter(
                "repro_quarantine_scrub_dropped_total",
                help="compiled plans convicted and dropped by quarantine scrubs",
            )
        self._m_tenant_requests = reg.counter(
            "repro_tenant_requests_total", help="requests arriving, by tenant"
        )
        self._m_tenant_served = reg.counter(
            "repro_tenant_served_total", help="responses delivered, by tenant"
        )
        self._m_tenant_shed = reg.counter(
            "repro_tenant_quota_shed_total",
            help="requests refused by weighted-fair admission, by tenant",
        )
        self._next_index = 0
        self._ordinal = 0
        self._cooldown_remaining = 0
        self._snapshots: dict[str, PlanCacheSnapshot] = {}
        self._reset_trace_state()
        for _ in range(n_workers):
            if self._provision_worker() is None:
                raise ConfigError(
                    f"instance pool too small for {n_workers} workers "
                    f"on platforms {self.worker_platforms}"
                )

    # ------------------------------------------------------------------
    # Fleet membership.
    def _make_service(self) -> CompressionService:
        return CompressionService(
            self.worker_platforms,
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            policy=self.policy,
            cache_capacity=self.cache_capacity,
            negative_ttl=self.negative_ttl,
            overload=self.overload,
            log=RecoveryLog(max_events=self.log_max_events),
            tracer=self.tracer,
            registry=self._registry,
            slo=self.slo,
        )

    def _provision_worker(self) -> FleetWorker | None:
        """Lease instances and start a worker, or ``None`` if the pool is dry."""
        leases = []
        for platform in self.worker_platforms:
            lease = self.pool.acquire(platform)
            if lease is None:
                for held in leases:
                    self.pool.release(held)
                return None
            leases.append(lease)
        name = f"w{self._next_index}"
        self._next_index += 1
        worker = FleetWorker(
            name=name,
            platforms=self.worker_platforms,
            leases=leases,
            service=self._make_service(),
        )
        worker.service.slo_worker = name
        self.workers[name] = worker
        self.ring.add(name)
        self._set_workers_gauge()
        return worker

    def _retire(self, worker: FleetWorker) -> None:
        """Drain a live worker, return its instances, and retire it."""
        self.ring.remove(worker.name)
        self._collect(worker, worker.service.drain())
        worker.state = "retired"
        for lease in worker.leases:
            self.pool.release(lease)
        self._set_workers_gauge()

    def _set_workers_gauge(self) -> None:
        self._m_workers.set(sum(1 for w in self.workers.values() if w.up))

    @property
    def live_workers(self) -> list[FleetWorker]:
        return [w for w in self.workers.values() if w.up]

    def _total_depth(self) -> int:
        return sum(w.depth for w in self.workers.values() if w.up)

    def _has_capacity(self, name: str) -> bool:
        return self.workers[name].depth < self.spill_depth

    # ------------------------------------------------------------------
    # Trace replay.
    def process(self, requests) -> tuple[list[Response], FleetStats]:
        """Replay a trace through the fleet; returns (responses, stats)."""
        reqs = sorted(requests, key=lambda r: (r.arrival, r.rid))
        self._reset_trace_state()
        if not reqs:
            return [], self._snapshot_stats(reqs)
        last_now = reqs[0].arrival
        for ordinal, req in enumerate(reqs):
            now = req.arrival
            last_now = now
            self._ordinal = ordinal
            # Fire every live worker's flush timers first: a worker whose
            # traffic moved elsewhere still flushes partial batches on
            # time, and queue depths read true for spill and autoscale.
            for worker in self.workers.values():
                if worker.up:
                    self._collect(worker, worker.service.poll(now))
            if self.fault_plan is not None:
                for fault in self.fault_plan.due(ordinal):
                    self._fail_worker(fault, now)
            self._process_rejoins(ordinal, now)
            if self.quarantine is not None:
                self._check_quarantine(now)
            if self.snapshot_interval and ordinal % self.snapshot_interval == 0:
                self._take_snapshots(now)
            if (
                self.autoscale is not None
                and ordinal
                and ordinal % self.autoscale.interval == 0
            ):
                self._evaluate_autoscale(ordinal, now)
            self._route(req, now)
        # Trace end: every pending restart lands (nothing stays down),
        # then live workers drain their partial batches.
        self._process_rejoins(math.inf, last_now)
        for worker in self.workers.values():
            if worker.up:
                self._collect(worker, worker.service.drain())
        if self.slo is not None:
            end = max((r.finish for r in self.responses), default=last_now)
            self.slo.finalize(end)
        return list(self.responses), self._snapshot_stats(reqs)

    # ------------------------------------------------------------------
    def _reset_trace_state(self) -> None:
        self.responses: list[Response] = []
        self.shed: list[ShedRequest] = []       # router-level (quota) sheds
        self.failures: list[FailedRequest] = []  # no-live-worker failures
        self.worker_of_rid: dict[int, str] = {}
        self.n_spills = 0
        self.n_replays = 0
        self.n_crashes = 0
        self.n_hangs = 0
        self.n_handoffs = 0
        self.n_quarantines = 0
        self.n_quarantine_rejoins = 0
        self.n_quarantine_interrupted = 0
        self.n_scrub_dropped = 0
        self.autoscale_events: list[AutoscaleEvent] = []
        self._tenant_latency: dict[str, object] = {}
        self._recent_latency: deque[float] = deque(maxlen=_RECENT_LATENCY_WINDOW)
        self._trace_ctx: dict[int, TraceContext] = {}  # rid -> current hop ctx

    def _route(self, req: Request, now: float, *, replay: bool = False) -> None:
        self._m_tenant_requests.inc(tenant=req.tenant)
        ctx = None
        if self.tracer is not None:
            # One trace per request for its whole fleet lifetime: the root
            # span ID is pre-allocated so every hop can parent onto it
            # before the ``fleet.request`` root is completed at response
            # time (spans are recorded after the fact).
            ctx = self._trace_ctx.get(req.rid)
            if ctx is None:
                ctx = TraceContext(
                    trace_id=self.tracer.new_trace(),
                    parent_span_id=self.tracer.new_span_id(),
                )
                self._trace_ctx[req.rid] = ctx
        if not replay and self.admission is not None:
            contended = (
                self._total_depth() >= self.admission.policy.contention_depth
            )
            if not self.admission.admit(req.tenant, contended=contended):
                self._quota_shed(req, now, ctx)
                return
        name, spilled = self.ring.route(route_key(req.key), self._has_capacity)
        if name is None:
            exc = DeviceLostError(f"request {req.rid}: no live fleet workers")
            self.failures.append(FailedRequest(req, exc))
            if self.slo is not None:
                self.slo.observe_outcome(
                    now, outcome="failed", tenant=req.tenant, reason="no_worker"
                )
            if ctx is not None:
                self.tracer.record_event(
                    ctx.trace_id, "request.failed", now,
                    rid=req.rid, error=type(exc).__name__, hop=ctx.hop,
                )
            return
        if spilled:
            self.n_spills += 1
            self._m_spills.inc()
        if replay:
            self.n_replays += 1
            self._m_replays.inc()
        worker = self.workers[name]
        self.worker_of_rid[req.rid] = name
        self._m_requests.inc(worker=name)
        if ctx is not None:
            labels = dict(
                worker=name, tenant=req.tenant, route_key=route_key(req.key)
            )
            ctx = ctx.next_hop(**labels) if replay else ctx.with_attrs(**labels)
            self._trace_ctx[req.rid] = ctx
            if spilled:
                self.tracer.record_event(
                    ctx.trace_id, "fleet.spill", now,
                    rid=req.rid, worker=name, hop=ctx.hop,
                )
            if replay:
                self.tracer.record_event(
                    ctx.trace_id, "fleet.replay", now,
                    rid=req.rid, worker=name, hop=ctx.hop,
                )
        self._collect(worker, worker.service.submit(req, ctx=ctx))

    def _quota_shed(self, req: Request, now: float, ctx=None) -> None:
        error = ShedError(
            f"request {req.rid} shed: tenant {req.tenant!r} over quota",
            reason="tenant_quota",
        )
        self.shed.append(ShedRequest(request=req, error=error, time=now))
        self._m_tenant_shed.inc(tenant=req.tenant)
        if self.slo is not None:
            self.slo.observe_outcome(
                now, outcome="shed", tenant=req.tenant, reason="tenant_quota"
            )
        if self.tracer is not None:
            tid = ctx.trace_id if ctx is not None else self.tracer.new_trace()
            self.tracer.record_event(
                tid, "overload.shed", now,
                rid=req.rid, reason="tenant_quota", tenant=req.tenant,
            )

    def _collect(self, worker: FleetWorker, responses: list[Response]) -> None:
        for r in responses:
            worker.n_served += 1
            self.responses.append(r)
            tenant = r.request.tenant
            if tenant not in self._tenant_latency:
                self._tenant_latency[tenant] = tenant_reservoir()
            self._tenant_latency[tenant].add(r.latency_s)
            self._recent_latency.append(r.latency_s)
            self._m_tenant_served.inc(tenant=tenant)
            if self.tracer is not None and r.trace_id is not None:
                self.tracer.record_event(
                    r.trace_id, "fleet.worker", r.finish,
                    worker=worker.name, platform=r.platform,
                )
                ctx = self._trace_ctx.pop(r.request.rid, None)
                if ctx is not None:
                    # Complete the pre-allocated fleet root: arrival to
                    # finish, same interval the serving hop's leaves
                    # partition, so leaf sums stay exact per hop.
                    self.tracer.record_span(
                        r.trace_id, "fleet.request",
                        r.request.arrival, r.finish,
                        span_id=ctx.parent_span_id,
                        rid=r.request.rid,
                        tenant=r.request.tenant,
                        route_key=ctx.attrs.get("route_key"),
                        served_by=ctx.attrs.get("worker"),
                        hops=ctx.hop + 1,
                    )

    # ------------------------------------------------------------------
    # Failure domains.
    def _fail_worker(self, fault: WorkerFault, now: float) -> None:
        worker = self.workers.get(fault.worker)
        if worker is None or worker.state not in ("up", "quarantined"):
            return  # already down or retired — the fault finds nothing to kill
        # A benched (quarantined) worker is still a live process, so a
        # scripted fault can strike it: the bench ends by destruction and
        # the ordinary crash/hang rejoin path takes over.
        if worker.state == "quarantined":
            self.n_quarantine_interrupted += 1
        queued = worker.take_queued()
        worker.state = "down"
        worker.pending_fault = fault
        worker.restart_at = self._ordinal + fault.rejoin_delay
        self.ring.remove(worker.name)
        self._m_crashes.inc(kind=fault.kind)
        if fault.kind == "hang":
            worker.n_hangs += 1
            self.n_hangs += 1
        else:
            worker.n_crashes += 1
            self.n_crashes += 1
            # The cache dies with the process: archive the accounting and
            # remember the hit rate the warm-handoff bar is judged against.
            worker.pre_crash_hit_rate = worker.cache_hit_rate
            worker.archive_service()
        self._set_workers_gauge()
        # Dedup-safe replay: these requests were pulled from the queue
        # before ever being served, so rerouting serves each exactly once.
        for req in queued:
            self._route(req, now, replay=True)

    def _process_rejoins(self, ordinal: float, now: float) -> None:
        for worker in self.workers.values():
            if (
                worker.state in ("down", "quarantined")
                and worker.restart_at is not None
                and worker.restart_at <= ordinal
            ):
                self._rejoin(worker, now)

    # ------------------------------------------------------------------
    # Integrity quarantine: the response curve for a *corrupting* worker
    # (docs/INTEGRITY.md).  Crash faults are loud; SDC is silent, so the
    # trigger is the guard-detection tally the worker's own service keeps.
    def _check_quarantine(self, now: float) -> None:
        for worker in list(self.workers.values()):
            if (
                worker.up
                and worker.integrity_delta() >= self.quarantine.fault_threshold
            ):
                self._quarantine_worker(worker, now)

    def _quarantine_worker(self, worker: FleetWorker, now: float) -> None:
        faults = worker.integrity_delta()
        # Same dedup-safe choreography as a crash: queued requests leave
        # *before* they are served, then replay on the surviving ring.
        queued = worker.take_queued()
        self.ring.remove(worker.name)
        self._collect(worker, worker.service.drain())
        worker.state = "quarantined"
        worker.n_quarantines += 1
        worker.restart_at = self._ordinal + self.quarantine.quarantine_ordinals
        self.n_quarantines += 1
        self._m_quarantines.inc(worker=worker.name)
        # Scrub while benched: every cached plan replays a probe against
        # the dense host oracle; convicted plans are dropped so the
        # worker rejoins with a revalidated (possibly smaller) cache.
        dropped = self._scrub_worker(worker)
        if self.tracer is not None:
            self.tracer.record_event(
                self.tracer.new_trace(), "fleet.quarantine", now,
                worker=worker.name, faults=faults, scrub_dropped=dropped,
            )
        for req in queued:
            self._route(req, now, replay=True)

    def _scrub_worker(self, worker: FleetWorker) -> int:
        if not (_integrity.integrity_enabled() and _integrity.current_policy().scrub):
            return 0
        from repro.integrity import scrub_cache

        dropped = len(scrub_cache(worker.service.cache))
        if dropped:
            self.n_scrub_dropped += dropped
            if self._m_quarantine_scrubbed is not None:
                self._m_quarantine_scrubbed.inc(dropped, worker=worker.name)
        return dropped

    def _rejoin(self, worker: FleetWorker, now: float) -> None:
        if worker.state == "quarantined":
            # Bench served: lift the drain latch and zero the strike count
            # (the tally itself is cumulative history; the floor moves).
            worker.restart_at = None
            worker.service.reopen()
            worker.integrity_floor = worker.service.integrity_faults
            worker.state = "up"
            self.ring.add(worker.name)
            self.n_quarantine_rejoins += 1
            self._m_quarantine_rejoins.inc(worker=worker.name)
            self._set_workers_gauge()
            if self.tracer is not None:
                self.tracer.record_event(
                    self.tracer.new_trace(), "fleet.quarantine_rejoin", now,
                    worker=worker.name,
                )
            return
        fault = worker.pending_fault
        worker.pending_fault = None
        worker.restart_at = None
        if fault is not None and fault.loses_cache:
            service = self._make_service()
            # A handoff snapshot crossed a machine boundary; the SDC fault
            # model says it can be struck in flight, so the restore path
            # corrupts it (when scripted) and then scrubs what it kept.
            snapshot = self._snapshots.get(worker.name)
            if snapshot is not None and snapshot.size > 0:
                snapshot = corrupt_snapshot(snapshot)
                service.cache.restore(snapshot)
                self.n_handoffs += 1
                self._m_handoffs.inc()
                if self.tracer is not None:
                    # Fleet-lifecycle annotation (own event-only trace):
                    # lets trace consumers count warm handoffs without
                    # joining against router stats.
                    self.tracer.record_event(
                        self.tracer.new_trace(), "fleet.handoff", now,
                        worker=worker.name, entries=snapshot.size,
                    )
            worker.service = service
            worker.service.slo_worker = worker.name
            # A replacement service's guard tally restarts at zero.
            worker.integrity_floor = 0
            self._scrub_worker(worker)
            # The fresh cache's counters start at zero: its cumulative hit
            # rate *is* the post-handoff rate the soak asserts on.
            worker.rejoin_cache = service.cache
        else:
            # Hang rejoin keeps the service; if the hang struck a benched
            # worker, lift its drain latch and restart its strike count so
            # it is not instantly re-quarantined on stale tallies.
            worker.service.reopen()
            worker.integrity_floor = worker.service.integrity_faults
        worker.state = "up"
        self.ring.add(worker.name)
        self._set_workers_gauge()

    def _take_snapshots(self, now: float) -> None:
        for worker in self.workers.values():
            if worker.up:
                self._snapshots[worker.name] = worker.service.cache.export_snapshot(
                    taken_at=now
                )

    # ------------------------------------------------------------------
    # Autoscaling.
    def _evaluate_autoscale(self, ordinal: int, now: float) -> None:
        live = self.live_workers
        if not live:
            return
        mean_depth = sum(w.depth for w in live) / len(live)
        p95 = (
            float(np.percentile(list(self._recent_latency), 95))
            if self._recent_latency
            else 0.0
        )
        action = self.autoscale.decide(
            live_workers=len(live), mean_depth=mean_depth, p95_s=p95
        )
        if action == "hold":
            return
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1
            return
        if action == "grow":
            worker = self._provision_worker()
            if worker is None:
                return  # pool exhausted — hold instead
            name = worker.name
        else:
            victim = min(live, key=lambda w: (w.depth, w.name))
            self._retire(victim)
            name = victim.name
        self.autoscale_events.append(
            AutoscaleEvent(
                ordinal=ordinal,
                action=action,
                worker=name,
                mean_depth=mean_depth,
                p95_s=p95,
                live_workers=len(self.live_workers),
            )
        )
        self._m_autoscale.inc(action=action)
        self._cooldown_remaining = self.autoscale.cooldown

    # ------------------------------------------------------------------
    # Accounting.
    def all_shed(self) -> list[ShedRequest]:
        out = list(self.shed)
        for worker in self.workers.values():
            out.extend(worker.all_shed())
        return out

    def all_failures(self) -> list[FailedRequest]:
        out = list(self.failures)
        for worker in self.workers.values():
            out.extend(worker.all_failures())
        return out

    def _snapshot_stats(self, reqs) -> FleetStats:
        stats = FleetStats()
        stats.n_requests = len(reqs)
        tenant_of = {r.rid: r.tenant for r in reqs}
        for r in reqs:
            stats.tenant(r.tenant).n_requests += 1
        for resp in self.responses:
            stats.tenant(resp.request.tenant).n_served += 1
        all_shed = self.all_shed()
        for s in all_shed:
            ts = stats.tenant(s.request.tenant)
            ts.n_shed += 1
            if s.reason == "tenant_quota":
                ts.n_quota_shed += 1
                stats.n_quota_shed += 1
            stats.shed_by_reason[s.reason] = stats.shed_by_reason.get(s.reason, 0) + 1
        all_failures = self.all_failures()
        for f in all_failures:
            stats.tenant(f.request.tenant).n_failed += 1
        for worker in self.workers.values():
            for rid in worker.all_degraded():
                tenant = tenant_of.get(rid)
                if tenant is not None:
                    stats.tenant(tenant).n_degraded += 1
        for tenant, reservoir in self._tenant_latency.items():
            stats.tenant(tenant).latency = reservoir
        stats.n_served = len(self.responses)
        stats.n_shed = len(all_shed)
        stats.n_failed = len(all_failures)
        first_arrival = min((r.arrival for r in reqs), default=0.0)
        last_finish = max((r.finish for r in self.responses), default=first_arrival)
        stats.makespan_s = last_finish - first_arrival
        stats.n_spills = self.n_spills
        stats.n_replays = self.n_replays
        stats.n_crashes = self.n_crashes
        stats.n_hangs = self.n_hangs
        stats.n_handoffs = self.n_handoffs
        stats.n_quarantines = self.n_quarantines
        stats.n_quarantine_rejoins = self.n_quarantine_rejoins
        stats.n_quarantine_interrupted = self.n_quarantine_interrupted
        stats.n_integrity_faults = sum(
            w.service.integrity_faults for w in self.workers.values()
        )
        stats.n_scrub_dropped = self.n_scrub_dropped
        stats.autoscale_events = list(self.autoscale_events)
        stats.final_live_workers = len(self.live_workers)
        stats.workers = [
            WorkerStats(
                name=w.name,
                state=w.state,
                platforms=w.platforms,
                n_served=w.n_served,
                n_crashes=w.n_crashes,
                n_hangs=w.n_hangs,
                n_quarantines=w.n_quarantines,
                integrity_faults=w.service.integrity_faults,
                cache_hit_rate=w.cache_hit_rate,
                pre_crash_hit_rate=w.pre_crash_hit_rate,
                post_rejoin_hit_rate=w.post_rejoin_hit_rate(),
            )
            for w in self.workers.values()
        ]
        return stats
