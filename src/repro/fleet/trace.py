"""Multi-tenant synthetic traces for fleet load tests.

Extends :func:`repro.serve.trace.synthetic_trace` with two things a
fleet needs that a single service does not:

* a **tenant mix** — each request is attributed to a tenant drawn from a
  seeded categorical distribution of *traffic* shares (which need not
  match the quota *weights*: the whole point of an abusive tenant is
  that its traffic share exceeds its fair share);
* a **wider key menu** — more (resolution, CF, method) combinations, so
  consistent-hash routing has enough distinct plan keys to spread over
  many workers while each key still repeats often enough for per-worker
  plan caches to pay off.
"""

from __future__ import annotations

import numpy as np

from repro.core.dct import DEFAULT_BLOCK
from repro.errors import ConfigError
from repro.serve.batcher import Request

#: Default tenant traffic mix: one deliberately abusive tenant ("burst")
#: sending well beyond a 4-way fair share, two steady products, one
#: trickle.  Values are traffic fractions, normalized at draw time.
DEFAULT_TENANT_MIX = {"burst": 0.55, "video": 0.2, "imaging": 0.2, "batch": 0.05}


def multi_tenant_trace(
    n: int = 1000,
    *,
    seed: int = 0,
    tenants: dict[str, float] | None = None,
    resolutions: tuple[int, ...] = (24, 32, 40, 48, 56, 64),
    channels: int = 3,
    cfs: tuple[int, ...] = (1, 2, 3, 4),
    methods: tuple[str, ...] = ("dc",),
    s_factors: tuple[int, ...] = (2,),
    rate: float = 2000.0,
    deadline: float | None = None,
    block: int = DEFAULT_BLOCK,
) -> list[Request]:
    """Generate ``n`` seeded requests attributed across a tenant mix.

    ``rate`` is the aggregate arrival rate (requests per modelled
    second); inter-arrival gaps are exponential, so the trace is one
    Poisson stream whose marks carry the tenant label.  ``deadline``, if
    given, stamps every request with an absolute deadline ``arrival +
    deadline`` (the fleet's per-worker overload policy can also apply a
    default instead).
    """
    if n < 1:
        raise ConfigError(f"trace length must be >= 1, got {n}")
    mix = tenants if tenants is not None else dict(DEFAULT_TENANT_MIX)
    if not mix:
        raise ConfigError("tenant mix must name at least one tenant")
    for tenant, share in mix.items():
        if share <= 0:
            raise ConfigError(f"tenant {tenant!r} share must be > 0, got {share}")
    names = sorted(mix)                            # deterministic draw order
    shares = np.array([mix[t] for t in names], dtype=np.float64)
    shares = shares / shares.sum()
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
    tenant_draws = rng.choice(len(names), size=n, p=shares)
    requests = []
    for i in range(n):
        res = int(rng.choice(resolutions))
        method = str(rng.choice(methods))
        arrival = float(arrivals[i])
        requests.append(
            Request(
                rid=i,
                image=rng.standard_normal((channels, res, res)).astype(np.float32),
                arrival=arrival,
                method=method,
                cf=int(rng.choice(cfs)),
                s=int(rng.choice(s_factors)) if method == "ps" else 2,
                block=block,
                deadline=arrival + deadline if deadline is not None else None,
                tenant=names[int(tenant_draws[i])],
            )
        )
    return requests
