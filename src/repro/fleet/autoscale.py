"""Queue-depth / p95-driven autoscaling of the live worker set.

The router evaluates the policy every ``interval`` requests on two
signals it already has: mean queue depth across live workers (the
batcher depths) and the modelled p95 latency over a recent window.  High
pressure grows the fleet by provisioning a worker from the
:class:`~repro.accel.multichip.InstancePool` (the same simulated
GroqNode / Bow-Pod hardware model the timing estimates price); sustained
idleness drains and retires the emptiest worker and returns its
instances to the pool.  A cooldown separates consecutive actions so the
fleet does not flap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Decisions an evaluation can return.
AUTOSCALE_ACTIONS = ("grow", "shrink", "hold")


@dataclass
class AutoscalePolicy:
    """When to grow or shrink the live worker set.

    Parameters
    ----------
    min_workers / max_workers:
        Hard bounds on the live set (crashed workers do not count as
        live, so a crash storm can push the fleet below ``min_workers``
        until restarts land — autoscaling never blocks recovery).
    grow_depth / shrink_depth:
        Mean queued requests per live worker above which to grow and
        below which to shrink.
    grow_p95_s:
        Optional latency trigger: grow when the recent modelled p95
        exceeds this even if queues look shallow (``None`` disables).
    interval:
        Evaluate every this many routed requests.
    cooldown:
        Evaluations to skip after any grow/shrink before acting again.
    """

    min_workers: int = 2
    max_workers: int = 16
    grow_depth: float = 6.0
    shrink_depth: float = 0.5
    grow_p95_s: float | None = None
    interval: int = 64
    cooldown: int = 2

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ConfigError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ConfigError(
                f"max_workers {self.max_workers} < min_workers {self.min_workers}"
            )
        if self.grow_depth <= self.shrink_depth:
            raise ConfigError(
                f"grow_depth {self.grow_depth} must exceed "
                f"shrink_depth {self.shrink_depth}"
            )
        if self.grow_p95_s is not None and self.grow_p95_s <= 0:
            raise ConfigError(f"grow_p95_s must be > 0, got {self.grow_p95_s}")
        if self.interval < 1:
            raise ConfigError(f"interval must be >= 1, got {self.interval}")
        if self.cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {self.cooldown}")

    # ------------------------------------------------------------------
    def decide(
        self, *, live_workers: int, mean_depth: float, p95_s: float
    ) -> str:
        """One evaluation; returns an action from :data:`AUTOSCALE_ACTIONS`.

        Cooldown is the caller's job (the router tracks evaluations since
        the last action) — the policy itself is a pure function.
        """
        pressed = mean_depth > self.grow_depth or (
            self.grow_p95_s is not None and p95_s > self.grow_p95_s
        )
        if pressed and live_workers < self.max_workers:
            return "grow"
        if (
            not pressed
            and mean_depth < self.shrink_depth
            and live_workers > self.min_workers
        ):
            return "shrink"
        return "hold"


@dataclass(frozen=True)
class AutoscaleEvent:
    """One grow/shrink that actually happened, for the fleet stats table."""

    ordinal: int                       # fleet request ordinal at evaluation
    action: str                        # "grow" | "shrink"
    worker: str                        # the worker added or retired
    mean_depth: float
    p95_s: float
    live_workers: int                  # live set size *after* the action
