"""Quarantine policy: what the fleet does about a corrupting worker.

Crashes and hangs (:mod:`repro.fleet.faults`) are *loud* failures — the
worker stops answering and the router reroutes.  Silent data corruption
is the opposite: the worker keeps answering, wrongly.  The integrity
guards (:mod:`repro.integrity`) turn each strike into a detected,
recomputed event, but a device that corrupts *repeatedly* is telling you
something about its hardware — and every recompute it forces burns the
retry budget the whole service shares.

:class:`QuarantinePolicy` is the fleet's response curve:

* a worker whose guard-detection tally grows by ``fault_threshold``
  since its last scrub is **quarantined** — taken off the hash ring,
  drained, its queued requests replayed elsewhere (dedup-safe, same as
  crash replay);
* while quarantined its plan cache is **scrubbed**
  (:func:`repro.integrity.scrub_cache`): every compiled plan replays a
  probe input against the dense host oracle, and convicted plans are
  dropped so they recompile from clean state;
* after ``quarantine_ordinals`` fleet ordinals it **cold-rejoins**: the
  ring range comes back, the drain latch lifts, and its per-incident
  fault tally restarts from zero.

The policy is pure configuration on the deterministic fleet clock, so a
seeded SDC storm quarantines the same workers at the same ordinals on
every replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class QuarantinePolicy:
    """When to bench a corrupting worker, and for how long.

    ``fault_threshold`` counts guard detections (ABFT corrections plus
    device-output digest faults) attributed to the worker's dispatches
    *since its last quarantine*, so one bad incident does not blacklist
    a worker forever.  ``quarantine_ordinals`` is the bench length in
    fleet request ordinals — the same clock worker-fault rejoins use.
    """

    fault_threshold: int = 2
    quarantine_ordinals: int = 96

    def __post_init__(self) -> None:
        if self.fault_threshold < 1:
            raise ConfigError(
                f"fault_threshold must be >= 1, got {self.fault_threshold}"
            )
        if self.quarantine_ordinals < 1:
            raise ConfigError(
                f"quarantine_ordinals must be >= 1, got {self.quarantine_ordinals}"
            )

    def describe(self) -> str:
        return (
            f"quarantine after {self.fault_threshold} integrity fault(s), "
            f"bench {self.quarantine_ordinals} ordinals + cache scrub"
        )
