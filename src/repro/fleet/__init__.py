"""Fleet-scale sharded serving: many workers, one deterministic replay.

``repro.fleet`` scales the single :class:`~repro.serve.service.CompressionService`
event loop out to a fleet of independent worker failure domains behind a
consistent-hash router with bounded-load spill, weighted-fair tenant
quotas, scripted worker faults with warm plan-cache handoff,
queue/p95-driven autoscaling over the simulated instance pool, and an
integrity :class:`~repro.fleet.quarantine.QuarantinePolicy` that benches
and scrubs workers whose dispatches keep tripping the SDC guards.  See
``docs/FLEET.md`` for the design tour and
:func:`repro.chaos.run_fleet_soak` for the SLO harness that exercises
all of it under a seeded crash storm.
"""

from repro.fleet.autoscale import AUTOSCALE_ACTIONS, AutoscaleEvent, AutoscalePolicy
from repro.fleet.faults import (
    SLOW_RESTART_FACTOR,
    WORKER_FAULT_KINDS,
    WorkerFault,
    WorkerFaultPlan,
    worker_storm,
)
from repro.fleet.quarantine import QuarantinePolicy
from repro.fleet.ring import HashRing, stable_hash
from repro.fleet.router import FleetRouter, route_key
from repro.fleet.stats import FleetStats, TenantStats, WorkerStats
from repro.fleet.tenants import TenantAdmission, TenantPolicy
from repro.fleet.trace import DEFAULT_TENANT_MIX, multi_tenant_trace
from repro.fleet.worker import WORKER_STATES, FleetWorker

__all__ = [
    "AUTOSCALE_ACTIONS",
    "AutoscaleEvent",
    "AutoscalePolicy",
    "DEFAULT_TENANT_MIX",
    "FleetRouter",
    "FleetStats",
    "FleetWorker",
    "HashRing",
    "QuarantinePolicy",
    "SLOW_RESTART_FACTOR",
    "TenantAdmission",
    "TenantPolicy",
    "TenantStats",
    "WORKER_FAULT_KINDS",
    "WORKER_STATES",
    "WorkerFault",
    "WorkerFaultPlan",
    "WorkerStats",
    "multi_tenant_trace",
    "route_key",
    "stable_hash",
    "worker_storm",
]
