"""Worker-level fault plans: whole failure domains going down.

:mod:`repro.faults` injects faults *inside* a worker (a flaky link, a
compile OOM); this module scripts faults *of* workers — the unit the
fleet treats as a failure domain.  A :class:`WorkerFault` strikes one
named worker at a fleet-level request ordinal (the deterministic clock a
trace replay advances), in one of three shapes:

``crash``
    The worker process dies.  Its queued requests must be replayed
    elsewhere and its plan cache is gone — the replacement warm-starts
    from the router's last handoff snapshot.
``hang``
    The worker stops responding but keeps its state; it is routed around
    and rejoins later with its own cache intact (no handoff needed).
``slow_restart``
    A crash whose replacement takes ``restart_after`` scaled by
    :data:`SLOW_RESTART_FACTOR` to come back — the grey failure between
    a clean crash and a hang.

A :class:`WorkerFaultPlan` is an ordered, seeded script;
:func:`worker_storm` generates one the way
:func:`~repro.chaos.storm.fault_storm` generates platform storms: a pure
function of ``(seed, knobs)`` that replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

#: Shapes a worker failure can take.
WORKER_FAULT_KINDS = ("crash", "hang", "slow_restart")

#: ``slow_restart`` multiplies the fault's ``restart_after`` by this.
SLOW_RESTART_FACTOR = 3


@dataclass(frozen=True)
class WorkerFault:
    """One scripted worker failure.

    ``at_request`` is the fleet-level request ordinal (0-based position
    in the arrival-sorted trace) at which the fault fires;
    ``restart_after`` is how many further ordinals pass before the worker
    rejoins (scaled up for ``slow_restart``).
    """

    worker: str
    kind: str = "crash"
    at_request: int = 0
    restart_after: int = 100

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ConfigError(
                f"unknown worker fault kind {self.kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )
        if self.at_request < 0:
            raise ConfigError(f"at_request must be >= 0, got {self.at_request}")
        if self.restart_after < 1:
            raise ConfigError(f"restart_after must be >= 1, got {self.restart_after}")

    @property
    def rejoin_delay(self) -> int:
        """Ordinals until the worker rejoins, after the fault fires."""
        if self.kind == "slow_restart":
            return self.restart_after * SLOW_RESTART_FACTOR
        return self.restart_after

    @property
    def loses_cache(self) -> bool:
        """Whether this fault destroys the worker's plan cache."""
        return self.kind in ("crash", "slow_restart")

    def describe(self) -> str:
        return (
            f"{self.kind} {self.worker} at request {self.at_request} "
            f"(rejoins after {self.rejoin_delay})"
        )


@dataclass
class WorkerFaultPlan:
    """An ordered script of worker faults, indexed by request ordinal."""

    faults: list[WorkerFault] = field(default_factory=list)
    seed: int = 0

    def add(self, worker: str, kind: str = "crash", **kwargs) -> "WorkerFaultPlan":
        self.faults.append(WorkerFault(worker=worker, kind=kind, **kwargs))
        return self

    def due(self, ordinal: int) -> list[WorkerFault]:
        """Faults that fire at exactly this fleet request ordinal."""
        return [f for f in self.faults if f.at_request == ordinal]

    def for_worker(self, worker: str) -> list[WorkerFault]:
        return [f for f in self.faults if f.worker == worker]

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def describe(self) -> str:
        if not self.faults:
            return "(no worker faults)"
        ordered = sorted(self.faults, key=lambda f: (f.at_request, f.worker))
        return "\n".join(f"  - {f.describe()}" for f in ordered)


def worker_storm(
    seed: int = 0,
    *,
    workers: tuple[str, ...],
    crashes: int = 2,
    hangs: int = 0,
    slow_restarts: int = 0,
    span: int = 1000,
    restart_after: int = 120,
) -> WorkerFaultPlan:
    """Generate a seeded storm of worker failures.

    Parameters
    ----------
    seed:
        Sole source of randomness; the same call returns the same plan.
    workers:
        Names eligible to fail.  Crash targets are drawn *without*
        replacement, so ``crashes`` distinct workers die (the acceptance
        bar "crashes >= 2 of 8 workers" is a property of the plan, not
        luck); hangs and slow restarts then draw from the remainder.
    crashes / hangs / slow_restarts:
        How many faults of each kind to script.
    span:
        Ordinal range the fault onsets are spread over — size it to the
        trace length so faults land mid-trace, with the last
        quarter kept clear so every victim has time to rejoin and serve
        warm traffic before the trace ends.
    restart_after:
        Base rejoin delay in ordinals (tripled for ``slow_restart``).
    """
    total = crashes + hangs + slow_restarts
    if crashes < 0 or hangs < 0 or slow_restarts < 0:
        raise ConfigError("fault counts must be >= 0")
    if total > len(workers):
        raise ConfigError(
            f"{total} worker faults need {total} distinct workers, "
            f"only {len(workers)} available"
        )
    if span < 1:
        raise ConfigError(f"span must be >= 1, got {span}")
    rng = np.random.default_rng(seed)
    plan = WorkerFaultPlan(seed=seed)
    if total == 0:
        return plan
    victims = [str(w) for w in rng.permutation(list(workers))[:total]]
    kinds = ["crash"] * crashes + ["hang"] * hangs + ["slow_restart"] * slow_restarts
    # Onsets spread over the first three quarters of the span, jittered,
    # so every fault fires mid-trace and every victim rejoins in-trace.
    usable = max(1, (3 * span) // 4)
    for i, (worker, kind) in enumerate(zip(victims, kinds)):
        base = (i * usable) // total
        jitter = int(rng.integers(0, max(1, usable // (2 * total))))
        plan.add(
            worker,
            kind,
            at_request=min(usable - 1, base + jitter),
            restart_after=restart_after,
        )
    return plan
