"""Observability layer: tracing, metrics, structured logging, profiling.

The serving layer (PR 2) and resilience layer (PR 1) each grew their own
ad-hoc counters; ``repro.obs`` replaces them with one deterministic
stack:

* :class:`Tracer` — structured spans with trace/span IDs from a seeded
  :class:`IdSource`.  The serving path emits one span tree per request
  whose leaf durations (from the analytical timing model) sum exactly to
  the request's reported modelled latency, so "where did the time go —
  compile, queue, batch wait, device, retry?" has a first-class answer.
* :class:`MetricsRegistry` — process-wide named counters / gauges /
  fixed-exponential-bucket histograms that the plan cache, batcher,
  scheduler, fault injector, ladder, trainer and ``.dcz`` container all
  report into (one registry instead of three disjoint stats mechanisms).
* Exporters — a JSONL event sink (:meth:`Tracer.to_jsonl`), a
  Prometheus-style text dump (:meth:`MetricsRegistry.render_prometheus`),
  and the ``repro obs-report`` CLI that renders a per-stage latency/byte
  breakdown from a trace file.
* :func:`profiled` — opt-in hooks on the DCT/chop/PS hot paths recording
  matmul-op counts against the registry.

Everything is deterministic: with the same seed, two runs emit
byte-identical trace files.  With tracing disabled (the default) the
instrumented paths change nothing — modelled timings and outputs are
bit-identical to the uninstrumented code.

See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.context import TraceContext
from repro.obs.critical_path import (
    CRITICAL_STAGES,
    CriticalPathAnalyzer,
    CriticalPathReport,
    RequestPath,
    analyze,
    format_critical_path,
)
from repro.obs.flight import FLEET_RING, FlightRecorder, bundle_to_json
from repro.obs.ids import IdSource
from repro.obs.log import ObsLogger, get_logger, set_verbosity
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
    exponential_buckets,
    get_registry,
    set_registry,
)
from repro.obs.profile import profiled, profiling, profiling_enabled, set_profiling
from repro.obs.report import format_report, load_trace, render_report
from repro.obs.slo import (
    AlertEvent,
    SLOMonitor,
    SLORule,
    default_fleet_rules,
)
from repro.obs.trace import Span, TraceEvent, Tracer, validate_trace

__all__ = [
    "TraceContext",
    "CRITICAL_STAGES",
    "CriticalPathAnalyzer",
    "CriticalPathReport",
    "RequestPath",
    "analyze",
    "format_critical_path",
    "FLEET_RING",
    "FlightRecorder",
    "bundle_to_json",
    "AlertEvent",
    "SLOMonitor",
    "SLORule",
    "default_fleet_rules",
    "IdSource",
    "ObsLogger",
    "get_logger",
    "set_verbosity",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "exponential_buckets",
    "get_registry",
    "set_registry",
    "profiled",
    "profiling",
    "profiling_enabled",
    "set_profiling",
    "format_report",
    "load_trace",
    "render_report",
    "Span",
    "TraceEvent",
    "Tracer",
    "validate_trace",
]
