"""Bounded flight recorder: recent spans per worker, dumped on alerts.

A :class:`FlightRecorder` is a :class:`~repro.obs.trace.Tracer` listener
that shadows every recorded span and event into bounded per-worker rings
(spans carrying a ``worker`` attr land in that worker's ring; everything
else — fleet roots, SLO episodes — lands in the fleet ring ``""``).  The
rings cost O(capacity) memory regardless of trace length, so the
recorder can ride along under a soak that records hundreds of thousands
of spans.

When something goes wrong — an :class:`~repro.obs.slo.SLOMonitor` alert
fires (the monitor calls :meth:`on_alert`), or a soak check fails and
calls :meth:`dump` directly — the recorder snapshots a *post-mortem
bundle*: the ring contents, a Prometheus dump of the metrics registry,
and the alert timeline so far.  Bundles are plain dicts serialised with
sorted keys and sequence-numbered filenames, so two same-seed runs dump
byte-identical bundles at the same modelled instants.

Like the rest of the observability stack, a recorder is opt-in: nothing
constructs one by default, and an unattached tracer pays nothing.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.metrics import get_registry

#: Ring key for spans/events not pinned to a worker.
FLEET_RING = ""


class FlightRecorder:
    """Per-worker rings of recent spans, dumped as post-mortem bundles."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        registry=None,
        out_dir=None,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"flight ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self._registry = registry if registry is not None else get_registry()
        self._m_dumps = self._registry.counter(
            "repro_flight_dumps_total", help="post-mortem bundles dumped, by reason"
        )
        self._m_spans = self._registry.gauge(
            "repro_flight_ring_spans", help="spans currently held, by worker ring"
        )
        self._m_dropped = self._registry.counter(
            "repro_flight_dropped_total", help="ring evictions (spans aged out)"
        )
        self._spans: dict[str, deque] = {}
        self._events: dict[str, deque] = {}
        self.dumps: list[dict] = []

    # ------------------------------------------------------------------
    # Tracer listener interface.
    def attach(self, tracer) -> "FlightRecorder":
        tracer.add_listener(self)
        return self

    def _ring(self, rings: dict[str, deque], worker: str) -> deque:
        ring = rings.get(worker)
        if ring is None:
            ring = rings[worker] = deque(maxlen=self.capacity)
        return ring

    def on_span(self, span) -> None:
        worker = str(span.attrs.get("worker", FLEET_RING))
        ring = self._ring(self._spans, worker)
        if len(ring) == ring.maxlen:
            self._m_dropped.inc(worker=worker)
        ring.append(span)
        self._m_spans.set(len(ring), worker=worker)

    def on_event(self, event) -> None:
        worker = str(event.attrs.get("worker", FLEET_RING))
        self._ring(self._events, worker).append(event)

    # ------------------------------------------------------------------
    # SLOMonitor hook.
    def on_alert(self, alert, monitor=None) -> dict:
        """Dump a bundle because an SLO alert fired."""
        return self.dump(
            reason=f"slo:{alert.rule}" + (f":{alert.label}" if alert.label else ""),
            time=alert.time,
            monitor=monitor,
        )

    # ------------------------------------------------------------------
    def workers(self) -> list[str]:
        """Ring keys seen so far, sorted (fleet ring first as ``""``)."""
        return sorted(set(self._spans) | set(self._events))

    def ring_spans(self, worker: str = FLEET_RING) -> list:
        return list(self._spans.get(worker, ()))

    def dump(self, reason: str, *, time: float | None = None, monitor=None) -> dict:
        """Snapshot a post-mortem bundle; returns (and retains) it.

        The bundle is deterministic: ring contents are span/event records
        in recording order, the metrics snapshot is the registry's sorted
        Prometheus dump, and the alert timeline comes from the monitor's
        modelled-clock events.
        """
        bundle = {
            "seq": len(self.dumps),
            "reason": reason,
            "time": time,
            "workers": {
                worker: {
                    "spans": [s.to_record() for s in self._spans.get(worker, ())],
                    "events": [e.to_record() for e in self._events.get(worker, ())],
                }
                for worker in self.workers()
            },
            "metrics": self._registry.render_prometheus(),
            "alerts": monitor.timeline() if monitor is not None else [],
        }
        self.dumps.append(bundle)
        self._m_dumps.inc(reason=reason.split(":", 1)[0])
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            path = self.out_dir / f"flight-{bundle['seq']:04d}.json"
            path.write_text(bundle_to_json(bundle))
        return bundle

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._spans.values())


def bundle_to_json(bundle: dict) -> str:
    """Byte-stable serialisation of one post-mortem bundle."""
    return json.dumps(bundle, sort_keys=True, indent=1) + "\n"
