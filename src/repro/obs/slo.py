"""Online SLO monitoring: multi-window burn-rate alerts on the modelled clock.

The fleet's SLO contract used to be checked only *offline*, after a
whole soak, by :func:`repro.chaos.run_fleet_soak`.  :class:`SLOMonitor`
evaluates it *online*, as the replay advances: every served / shed /
failed outcome and breaker transition is an observation on the modelled
clock, and each :class:`SLORule` tracks the fraction of its error budget
being burned over two sliding windows (the classic multi-window
burn-rate alert: a short window for responsiveness, a long window
against flapping).  An alert **fires** when both windows burn above the
rule's threshold, and **clears** when the short window recovers.

Because observations arrive in deterministic replay order carrying
modelled timestamps, two same-seed runs produce *identical* alert
timelines — fire/clear times are exact modelled seconds, not wall-clock
approximations, so the fleet soak can assert the timeline byte-for-byte.

Signals (:data:`SLO_SIGNALS`):

``latency``
    SLI = fraction of served requests over ``objective`` seconds.  With
    ``budget=0.05`` this is exactly the "p95 latency <= objective" SLO.
``shed``
    SLI = fraction of outcomes shed or failed (availability).
``quota_shed``
    SLI = per-tenant fraction of outcomes refused as ``tenant_quota``
    (fairness).  With ``per_label=True`` each tenant gets its own
    window, and alerts are labelled with the tenant.
``breaker_open``
    SLI = fraction of the window a platform's circuit breaker spent
    open (fed from breaker transitions, per-platform labels).

Alert episodes are first-class trace material: with a tracer attached,
each fire mints a trace and the completed episode is recorded as one
``slo.alert`` span from fire to clear (plus ``slo.fire`` / ``slo.clear``
events), so alert history rides in the same JSONL as request spans.  A
:class:`~repro.obs.flight.FlightRecorder` attached via ``recorder=``
dumps a post-mortem bundle at every fire.

With no monitor attached (the default everywhere) none of this code
runs: modelled timings and outputs are bit-identical to an
uninstrumented replay.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.metrics import get_registry

#: The SLIs a rule can watch.
SLO_SIGNALS = ("latency", "shed", "quota_shed", "breaker_open")

#: Aggregate (unlabelled) series key.
_AGGREGATE = ""


@dataclass(frozen=True)
class SLORule:
    """One burn-rate alert rule over a signal's error budget.

    ``budget`` is the allowed bad fraction (the error budget); the burn
    rate over a window is ``bad_fraction / budget``, so a burn of 1.0
    consumes the budget exactly as fast as the SLO allows and
    ``burn_threshold=2.0`` fires when it is being burned twice too fast.
    """

    name: str
    signal: str = "latency"
    objective: float = 0.05       # latency bound (s); unused by other signals
    budget: float = 0.05          # allowed bad fraction (error budget)
    short_window: float = 0.005   # modelled seconds
    long_window: float = 0.02
    burn_threshold: float = 2.0   # fire when BOTH windows burn at >= this
    clear_burn: float = 1.0       # clear when the short window burns < this
    min_events: int = 20          # long-window observations needed to fire
    per_label: bool = False       # evaluate per tenant/platform label

    def __post_init__(self) -> None:
        if self.signal not in SLO_SIGNALS:
            raise ConfigError(
                f"unknown SLO signal {self.signal!r}; expected one of {SLO_SIGNALS}"
            )
        if not 0 < self.budget <= 1:
            raise ConfigError(f"budget must be in (0, 1], got {self.budget}")
        if self.short_window <= 0 or self.long_window < self.short_window:
            raise ConfigError(
                f"need 0 < short_window <= long_window, got "
                f"{self.short_window}, {self.long_window}"
            )
        if self.burn_threshold <= 0 or self.clear_burn <= 0:
            raise ConfigError("burn_threshold and clear_burn must be > 0")
        if self.min_events < 1:
            raise ConfigError(f"min_events must be >= 1, got {self.min_events}")


def default_fleet_rules(p95_budget_s: float = 0.05) -> tuple[SLORule, ...]:
    """The fleet's standing alert rules, sized to modelled-clock traces.

    Window sizes assume the fleet soak's scale (thousands of requests
    per modelled second); pass custom rules for slower traces.
    """
    return (
        SLORule(name="latency_p95", signal="latency", objective=p95_budget_s),
        SLORule(name="shed_ratio", signal="shed", budget=0.05),
        SLORule(
            name="tenant_quota", signal="quota_shed", budget=0.10, per_label=True
        ),
        SLORule(
            name="breaker_open", signal="breaker_open", budget=0.10,
            per_label=True, min_events=1,
        ),
    )


@dataclass(frozen=True)
class AlertEvent:
    """One fire or clear transition, at an exact modelled time."""

    kind: str            # "fire" | "clear"
    rule: str
    label: str           # tenant/platform for per-label rules, "" aggregate
    time: float
    burn_short: float
    burn_long: float
    forced: bool = False  # a finalize-time clear of a still-burning alert

    def to_record(self) -> dict:
        return {
            "kind": self.kind,
            "rule": self.rule,
            "label": self.label,
            "time": self.time,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "forced": self.forced,
        }


class SLOMonitor:
    """Evaluate burn-rate rules online over a deterministic replay."""

    def __init__(
        self,
        rules: tuple[SLORule, ...] | None = None,
        *,
        tracer=None,
        recorder=None,
        registry=None,
    ) -> None:
        self.rules = tuple(rules) if rules is not None else default_fleet_rules()
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO rule names: {sorted(names)}")
        self.tracer = tracer
        self.recorder = recorder
        reg = registry if registry is not None else get_registry()
        self._m_alerts = reg.counter(
            "repro_slo_alerts_total", help="SLO alert transitions, by rule and kind"
        )
        self._m_active = reg.gauge(
            "repro_slo_active_alerts", help="alerts currently firing"
        )
        self._m_burn = reg.gauge(
            "repro_slo_burn_rate", help="last evaluated long-window burn, by rule"
        )
        self.events: list[AlertEvent] = []
        # (rule, label) -> deque[(time, bad)] covering the long window.
        self._windows: dict[tuple[str, str], deque] = {}
        # (rule, label) -> (fire event, episode trace id | None)
        self._active: dict[tuple[str, str], tuple[AlertEvent, str | None]] = {}
        # Breaker open-time bookkeeping, per platform label.
        self._open_since: dict[str, float] = {}
        self._open_intervals: dict[str, deque] = {}
        self._now = -math.inf

    # ------------------------------------------------------------------
    # Observations (all on the modelled clock, in replay order).
    def observe_outcome(
        self,
        time: float,
        *,
        outcome: str,
        latency: float | None = None,
        tenant: str | None = None,
        worker: str | None = None,
        reason: str | None = None,
    ) -> None:
        """Feed one request's terminal outcome into every matching rule."""
        del worker  # carried for symmetry with trace attrs; rules key on tenant
        for rule in self.rules:
            if rule.signal == "latency":
                if outcome != "served" or latency is None:
                    continue
                bad = latency > rule.objective
            elif rule.signal == "shed":
                bad = outcome in ("shed", "failed")
            elif rule.signal == "quota_shed":
                bad = outcome == "shed" and reason == "tenant_quota"
            else:  # breaker_open consumes no outcomes
                continue
            label = (tenant or _AGGREGATE) if rule.per_label else _AGGREGATE
            self._add(rule, label, time, bad)
        self._evaluate(time)

    def observe_breaker(self, time: float, platform: str, state: str) -> None:
        """Feed one circuit-breaker transition (state is the *new* state)."""
        if state == "open":
            self._open_since.setdefault(platform, time)
        else:
            since = self._open_since.pop(platform, None)
            if since is not None:
                self._open_intervals.setdefault(platform, deque()).append(
                    (since, time)
                )
        self._evaluate(time)

    # ------------------------------------------------------------------
    def _add(self, rule: SLORule, label: str, time: float, bad: bool) -> None:
        window = self._windows.setdefault((rule.name, label), deque())
        window.append((time, bad))
        horizon = time - rule.long_window
        while window and window[0][0] < horizon:
            window.popleft()

    def _burn(
        self, rule: SLORule, label: str, now: float, span: float
    ) -> tuple[float, int]:
        """(burn rate, observation count) for one window ending at ``now``."""
        if rule.signal == "breaker_open":
            open_s = self._open_seconds(label, now, span)
            return (open_s / span) / rule.budget, 1
        window = self._windows.get((rule.name, label), ())
        lo = now - span
        n = bad = 0
        for t, is_bad in window:
            if lo < t <= now:
                n += 1
                bad += is_bad
        if n == 0:
            return 0.0, 0
        return (bad / n) / rule.budget, n

    def _open_seconds(self, platform: str, now: float, span: float) -> float:
        lo = now - span
        total = 0.0
        intervals = self._open_intervals.get(platform, ())
        for start, end in intervals:
            total += max(0.0, min(end, now) - max(start, lo))
        since = self._open_since.get(platform)
        if since is not None:
            total += max(0.0, now - max(since, lo))
        return total

    def _labels(self, rule: SLORule) -> list[str]:
        if not rule.per_label:
            return [_AGGREGATE]
        if rule.signal == "breaker_open":
            seen = set(self._open_since) | set(self._open_intervals)
        else:
            seen = {
                label for (name, label) in self._windows if name == rule.name
            }
        return sorted(seen)

    def _evaluate(self, now: float) -> None:
        self._now = max(self._now, now)
        for rule in self.rules:
            for label in self._labels(rule):
                burn_s, _ = self._burn(rule, label, now, rule.short_window)
                burn_l, n_l = self._burn(rule, label, now, rule.long_window)
                self._m_burn.set(burn_l, rule=rule.name, label=label)
                key = (rule.name, label)
                if key not in self._active:
                    if (
                        n_l >= rule.min_events
                        and burn_l >= rule.burn_threshold
                        and burn_s >= rule.burn_threshold
                    ):
                        self._fire(rule, label, now, burn_s, burn_l)
                elif burn_s < rule.clear_burn:
                    self._clear(rule, label, now, burn_s, burn_l)

    # ------------------------------------------------------------------
    def _fire(
        self, rule: SLORule, label: str, now: float, burn_s: float, burn_l: float
    ) -> None:
        event = AlertEvent(
            kind="fire", rule=rule.name, label=label, time=now,
            burn_short=burn_s, burn_long=burn_l,
        )
        self.events.append(event)
        self._m_alerts.inc(rule=rule.name, kind="fire")
        episode_tid = None
        if self.tracer is not None:
            episode_tid = self.tracer.new_trace()
            self.tracer.record_event(
                episode_tid, "slo.fire", now,
                rule=rule.name, label=label, burn_short=burn_s, burn_long=burn_l,
            )
        self._active[(rule.name, label)] = (event, episode_tid)
        self._m_active.set(len(self._active))
        if self.recorder is not None:
            self.recorder.on_alert(event, monitor=self)

    def _clear(
        self,
        rule: SLORule,
        label: str,
        now: float,
        burn_s: float,
        burn_l: float,
        *,
        forced: bool = False,
    ) -> None:
        fired, episode_tid = self._active.pop((rule.name, label))
        event = AlertEvent(
            kind="clear", rule=rule.name, label=label, time=now,
            burn_short=burn_s, burn_long=burn_l, forced=forced,
        )
        self.events.append(event)
        self._m_alerts.inc(rule=rule.name, kind="clear")
        self._m_active.set(len(self._active))
        if self.tracer is not None and episode_tid is not None:
            self.tracer.record_event(
                episode_tid, "slo.clear", now, rule=rule.name, label=label,
                forced=forced,
            )
            self.tracer.record_span(
                episode_tid, "slo.alert", fired.time, now,
                rule=rule.name, label=label,
                burn_short_at_fire=fired.burn_short,
                burn_long_at_fire=fired.burn_long,
                forced_clear=forced,
            )

    def finalize(self, now: float) -> None:
        """Close the replay: force-clear still-active alerts at ``now``.

        The forced clears are part of the deterministic timeline (marked
        ``forced=True``), so an alert that never recovered still yields a
        complete, validatable ``slo.alert`` span.
        """
        for rule in self.rules:
            for label in self._labels(rule):
                if (rule.name, label) in self._active:
                    burn_s, _ = self._burn(rule, label, now, rule.short_window)
                    burn_l, _ = self._burn(rule, label, now, rule.long_window)
                    self._clear(rule, label, now, burn_s, burn_l, forced=True)

    # ------------------------------------------------------------------
    @property
    def fired(self) -> int:
        """Total fire transitions so far."""
        return sum(1 for e in self.events if e.kind == "fire")

    def active_alerts(self) -> list[tuple[str, str]]:
        """(rule, label) pairs currently firing, sorted."""
        return sorted(self._active)

    def timeline(self) -> list[dict]:
        """The fire/clear transitions, in modelled-time order of record."""
        return [e.to_record() for e in self.events]

    def timeline_jsonl(self) -> str:
        """Byte-stable JSONL of the timeline (same-seed runs compare equal)."""
        lines = [
            json.dumps(r, sort_keys=True, separators=(",", ":"))
            for r in self.timeline()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def format_timeline(self) -> str:
        if not self.events:
            return "(no SLO alerts)"
        lines = []
        for e in self.events:
            label = f"{{{e.label}}}" if e.label else ""
            note = " [forced at trace end]" if e.forced else ""
            lines.append(
                f"  {e.time * 1e3:10.3f} ms  {e.kind:<5} {e.rule}{label} "
                f"(burn short {e.burn_short:.2f} / long {e.burn_long:.2f}){note}"
            )
        return "\n".join(lines)
