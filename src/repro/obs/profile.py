"""Opt-in profiling hooks for the compressor hot paths.

``@profiled("core.dc.compress", matmuls=2)`` wraps a compressor method;
while profiling is enabled each call records, against the process
metrics registry:

* ``repro_profiled_calls_total{site=...}`` — invocation count;
* ``repro_profiled_matmuls_total{site=...}`` — matmul-op count (the
  paper's hot paths are 2 matmuls per plane for DCT+Chop, 2 per chunk
  for partial serialization);
* ``repro_profiled_elements_total{site=...}`` — elements processed.

Disabled (the default), the wrapper is a single module-flag check —
nothing is recorded, no registry is touched, and the wrapped function is
returned unchanged to the tracer, so compiled graphs, modelled timings
and numerics are bit-identical to the undecorated code.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager

from repro.obs.metrics import get_registry

_ENABLED = False


def profiling_enabled() -> bool:
    return _ENABLED


def set_profiling(enabled: bool) -> bool:
    """Turn the hooks on or off; returns the previous setting."""
    global _ENABLED
    previous, _ENABLED = _ENABLED, bool(enabled)
    return previous


@contextmanager
def profiling():
    """``with profiling(): ...`` — hooks on inside the block only."""
    previous = set_profiling(True)
    try:
        yield
    finally:
        set_profiling(previous)


def _elements(args, kwargs) -> int:
    for value in [*args, *kwargs.values()]:
        size = getattr(value, "size", None)
        if size is not None:
            return int(size)
    return 0


def profiled(site: str, *, matmuls=0):
    """Decorate a method; ``matmuls`` is an int or a ``callable(self)``."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if _ENABLED:
                reg = get_registry()
                reg.counter(
                    "repro_profiled_calls_total", help="profiled hot-path invocations"
                ).inc(site=site)
                n = matmuls(self) if callable(matmuls) else matmuls
                if n:
                    reg.counter(
                        "repro_profiled_matmuls_total", help="profiled matmul ops"
                    ).inc(n, site=site)
                elements = _elements(args, kwargs)
                if elements:
                    reg.counter(
                        "repro_profiled_elements_total", help="profiled elements processed"
                    ).inc(elements, site=site)
            return fn(self, *args, **kwargs)

        return wrapper

    return decorate
