"""Cross-worker trace propagation: the fleet's causal context.

A single fleet request can touch several workers before it is served:
its primary ring owner may be at spill depth, the worker it queued on
may crash (its queue is replayed elsewhere), and the worker that finally
serves it may have warm-started from another worker's cache snapshot.
Each of those is a *hop*.  A :class:`TraceContext` is the immutable
envelope the router stamps onto every hop so that one request is one
causal span tree no matter how many workers it crossed:

* ``trace_id`` — the request's single trace, minted once by the router;
* ``parent_span_id`` — the *pre-allocated* span ID of the fleet-level
  root span.  Spans are recorded after the fact on the modelled clock,
  so the root (``fleet.request``) is only completed when the response
  lands — pre-allocating its ID lets every worker-side hop span parent
  onto it immediately;
* ``hop`` — 0 for the first routing decision, incremented on every
  reroute (bounded-load spill or post-crash replay);
* ``attrs`` — labels the router resolves at routing time (``worker``,
  ``tenant``, ``route_key``) and the worker copies verbatim onto its
  hop span, so trace consumers can group stages by worker/tenant
  without joining against router state.

The context is propagation-only: it never touches modelled timing, and
with no tracer attached it is never constructed — the disabled path
stays bit-identical to an uninstrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TraceContext:
    """The causal envelope one fleet request carries across workers."""

    trace_id: str
    parent_span_id: str
    hop: int = 0
    attrs: dict = field(default_factory=dict)

    def next_hop(self, **attrs) -> "TraceContext":
        """The context for a reroute: same trace, hop count + 1."""
        return replace(self, hop=self.hop + 1, attrs=dict(attrs))

    def with_attrs(self, **attrs) -> "TraceContext":
        """Same hop, with the routing labels resolved."""
        return replace(self, attrs=dict(attrs))
