"""Process-wide metrics registry: counters, gauges, histograms, reservoirs.

One named instrument per metric, with optional labels (``counter.inc(
platform="ipu")``), replacing the per-module tallies that PR 1 and PR 2
each grew on their own (``CompiledPlanCache`` ints, ``ServerStats``
lists, ``RecoveryLog`` scans).  Histograms use *fixed exponential
buckets* so their memory is bounded regardless of sample count, and
:class:`Reservoir` provides bounded, seeded, deterministic percentile
estimation for latency series.

The default process registry is returned by :func:`get_registry`; tests
swap in a fresh one with :func:`set_registry` (restoring the old) so
assertions see only their own increments.

:meth:`MetricsRegistry.render_prometheus` emits the standard
``# HELP`` / ``# TYPE`` text exposition format, sorted, so dumps are
deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

# Label values are joined into a stable tuple key, sorted by label name.
_LabelKey = tuple


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping: ``\\``, ``"``, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (quotes are legal there)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
        + "}"
    )


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` bucket upper bounds: start, start*factor, ... (no +Inf)."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ConfigError(
            f"need start > 0, factor > 1, count >= 1; got {start}, {factor}, {count}"
        )
    return tuple(start * factor**i for i in range(count))


# Default latency-style buckets: 1 us .. ~4.2 s in x2 steps (23 buckets).
DEFAULT_BUCKETS = exponential_buckets(1e-6, 2.0, 23)


@dataclass
class _Instrument:
    """Shared shape of one named metric with labelled children."""

    name: str
    help: str = ""
    unit: str = ""
    kind: str = "counter"

    def __post_init__(self) -> None:
        self._lock = threading.Lock()


class Counter(_Instrument):
    """Monotonically increasing per-labelset totals."""

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit, kind="counter")
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        """Sum across every labelset."""
        return sum(self._values.values())

    def series(self) -> dict[_LabelKey, float]:
        return dict(self._values)


class Gauge(_Instrument):
    """A settable point-in-time value per labelset."""

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit, kind="gauge")
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def series(self) -> dict[_LabelKey, float]:
        return dict(self._values)


@dataclass
class _HistogramSeries:
    counts: list[int]
    sum: float = 0.0
    count: int = 0


class Histogram(_Instrument):
    """Fixed-exponential-bucket histogram (bounded memory, any sample count)."""

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, unit, kind="histogram")
        if not buckets or any(b <= a for a, b in zip(buckets, buckets[1:])):
            raise ConfigError(f"histogram {name} needs strictly increasing buckets")
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[_LabelKey, _HistogramSeries] = {}

    def _get_series(self, key: _LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(counts=[0] * (len(self.buckets) + 1))
        return series

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._get_series(key)
            series.sum += value
            series.count += 1
            series.counts[int(np.searchsorted(self.buckets, value, side="left"))] += 1

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def bucket_counts(self, **labels) -> list[int]:
        """Per-bucket counts (last entry is the +Inf overflow bucket)."""
        series = self._series.get(_label_key(labels))
        return list(series.counts) if series else [0] * (len(self.buckets) + 1)

    def quantile(self, q: float, **labels) -> float:
        """Upper bound of the bucket containing the ``q``-quantile sample.

        Deterministic and conservative; 0 for an empty series, and the
        last finite bucket bound for overflow samples.
        """
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = max(1, int(np.ceil(q / 100.0 * series.count)))
        seen = 0
        for i, n in enumerate(series.counts):
            seen += n
            if seen >= rank:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]

    def series(self) -> dict[_LabelKey, _HistogramSeries]:
        return dict(self._series)


class Reservoir:
    """Bounded, seeded reservoir of samples with exact small-n percentiles.

    Algorithm R: the first ``capacity`` samples are kept verbatim (so
    percentiles are *exact* for series that fit — every current trace
    replay does); beyond that each new sample replaces a seeded-random
    slot, keeping memory constant over arbitrarily long traces.  Two runs
    feeding the same sequence produce identical state.
    """

    def __init__(self, capacity: int = 2048, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._samples: list[float] = []
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.capacity:
                self._samples[slot] = value

    def extend(self, values) -> None:
        for v in values:
            self.add(v)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    @property
    def saturated(self) -> bool:
        return self.count > self.capacity

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if empty).

        Exact while ``count <= capacity``; an unbiased seeded estimate
        afterwards.
        """
        if not self._samples:
            return 0.0
        return float(
            np.percentile(np.asarray(self._samples, dtype=np.float64), q, method="lower")
        )

    def __len__(self) -> int:
        return len(self._samples)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Reservoir):
            return NotImplemented
        return (
            self.count == other.count
            and self.sum == other.sum
            and self._samples == other._samples
        )


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, factory) -> _Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = factory()
            elif not isinstance(inst, kind):
                raise ConfigError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"not {kind.__name__.lower()}"
                )
            return inst

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help, unit))

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help, unit))

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, help, unit, buckets)
        )

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def reset(self) -> None:
        """Drop every instrument (tests)."""
        with self._lock:
            self._instruments.clear()

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """Sorted Prometheus text-exposition dump of every instrument.

        Byte-stable: instrument names and label sets are sorted (label
        keys alphabetically inside each set, sets lexicographically),
        and label values / HELP text are escaped per the exposition
        spec, so two registries with equal contents render identically.
        """
        lines: list[str] = []
        for name in self.names():
            inst = self._instruments[name]
            if inst.help:
                lines.append(f"# HELP {name} {_escape_help(inst.help)}")
            lines.append(f"# TYPE {name} {inst.kind}")
            if isinstance(inst, (Counter, Gauge)):
                for key in sorted(inst.series()):
                    lines.append(f"{name}{_format_labels(key)} {inst.series()[key]:g}")
            elif isinstance(inst, Histogram):
                for key in sorted(inst.series()):
                    series = inst.series()[key]
                    cumulative = 0
                    for bound, n in zip(inst.buckets, series.counts):
                        cumulative += n
                        le = _label_key({**dict(key), "le": f"{bound:g}"})
                        lines.append(f"{name}_bucket{_format_labels(le)} {cumulative}")
                    le = _label_key({**dict(key), "le": "+Inf"})
                    lines.append(f"{name}_bucket{_format_labels(le)} {series.count}")
                    lines.append(f"{name}_sum{_format_labels(key)} {series.sum:g}")
                    lines.append(f"{name}_count{_format_labels(key)} {series.count}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Process-default registry.

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every instrumented module reports to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install a registry (tests use a fresh one); returns the previous."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous
