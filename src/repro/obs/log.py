"""Structured logger for diagnostics that used to be ad-hoc.

The repo's scattered ``warnings.warn`` / ``print(..., file=sys.stderr)``
diagnostics route through one :class:`ObsLogger`:

* every record has an event name (dotted, e.g. ``container.legacy_dcz1``)
  plus structured fields, and is appended to ``logger.records`` so tests
  can assert on exactly what was reported;
* ``warning``-level records also go through :mod:`warnings` (keeping
  ``pytest.warns`` and ``-W error`` workflows intact) unless verbosity is
  ``quiet``;
* ``info`` prints to stderr at normal verbosity and above; ``debug`` only
  under ``verbose``.  The CLI's global ``--quiet`` / ``--verbose`` flags
  set this via :func:`set_verbosity`.
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field

from repro.errors import ConfigError

VERBOSITIES = ("quiet", "normal", "verbose")
_LEVELS = {"debug": 10, "info": 20, "warning": 30}


@dataclass(frozen=True)
class LogRecord:
    """One structured diagnostic."""

    level: str           # "debug" | "info" | "warning"
    event: str           # dotted event name, e.g. "container.legacy_dcz1"
    message: str
    fields: dict = field(default_factory=dict)

    def format(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.fields.items())
        return f"[repro] {self.level.upper()} {self.event}: {self.message}{extra}"


class ObsLogger:
    """Structured sink with verbosity gating and a warnings bridge."""

    def __init__(self, verbosity: str = "normal", *, stream=None, keep: int = 1000) -> None:
        self.set_verbosity(verbosity)
        self.stream = stream
        self.keep = keep
        self.records: list[LogRecord] = []

    # ------------------------------------------------------------------
    def set_verbosity(self, verbosity: str) -> None:
        if verbosity not in VERBOSITIES:
            raise ConfigError(
                f"unknown verbosity {verbosity!r}; expected one of {VERBOSITIES}"
            )
        self.verbosity = verbosity

    def _emits(self, level: str) -> bool:
        if self.verbosity == "quiet":
            return False
        if self.verbosity == "normal":
            return _LEVELS[level] >= _LEVELS["info"]
        return True

    def log(self, level: str, event: str, message: str, **fields) -> LogRecord:
        if level not in _LEVELS:
            raise ConfigError(f"unknown log level {level!r}")
        record = LogRecord(level=level, event=event, message=message, fields=fields)
        self.records.append(record)
        if len(self.records) > self.keep:
            del self.records[: len(self.records) - self.keep]
        if level == "warning":
            # Bridge into the stdlib warnings machinery so existing
            # ``pytest.warns`` / filter configurations keep working; the
            # warning printer is the output channel, so no stderr double
            # print.  ``stacklevel=3`` points at the instrumented caller.
            if self.verbosity != "quiet":
                warnings.warn(record.format(), UserWarning, stacklevel=3)
        elif self._emits(level):
            print(record.format(), file=self.stream if self.stream is not None else sys.stderr)
        return record

    def debug(self, event: str, message: str, **fields) -> LogRecord:
        return self.log("debug", event, message, **fields)

    def info(self, event: str, message: str, **fields) -> LogRecord:
        return self.log("info", event, message, **fields)

    def warning(self, event: str, message: str, **fields) -> LogRecord:
        return self.log("warning", event, message, **fields)

    # ------------------------------------------------------------------
    def events(self) -> list[str]:
        return [r.event for r in self.records]

    def by_event(self, event: str) -> list[LogRecord]:
        return [r for r in self.records if r.event == event]


# ----------------------------------------------------------------------
# Process-default logger.

_LOGGER = ObsLogger()


def get_logger() -> ObsLogger:
    return _LOGGER


def set_logger(logger: ObsLogger) -> ObsLogger:
    """Install a logger (tests); returns the previous one."""
    global _LOGGER
    previous, _LOGGER = _LOGGER, logger
    return previous


def set_verbosity(verbosity: str) -> str:
    """Set the process logger's verbosity; returns the previous setting."""
    previous = _LOGGER.verbosity
    _LOGGER.set_verbosity(verbosity)
    return previous
