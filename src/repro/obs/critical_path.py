"""Critical-path attribution: where does the (p95) latency budget go?

The span-tree invariant (leaf durations sum exactly to root duration)
means a trace file already contains a *complete* accounting of every
modelled second — this module just pivots it.  For each request trace,
:class:`CriticalPathAnalyzer` attributes the root latency to stages:

``batch_wait`` / ``queue`` / ``compile`` / ``device``
    directly from the leaf spans of the serving hop;
``replay``
    carved out of the serving hop's ``batch_wait``: a replayed request
    keeps its original arrival, so the wait between arrival and the last
    ``fleet.replay`` event is time spent queued on a worker that crashed,
    not genuine batch formation wait on the worker that served it;
``retry`` / ``handoff``
    counted categories (``resilience.retry`` events ride inside the
    ``device`` leaf; warm handoffs are fleet-level, not per-request), so
    they rank hot spots by occurrence without double-charging seconds.

Because the stage seconds per request are a re-partition of the leaves,
aggregate coverage — attributed seconds over summed root latency — is
exact: the analyzer proves it attributes 100% (and the fleet soak
asserts >= 95% over the p95 tail, where it matters).  Hot-spot rankings
(worker, tenant, CF) come from the same per-request records, which is
the signal the autoscaler and ``shed_policy="degrade"`` decisions have
been missing: *which* worker/tenant/plan eats the tail, and in *which*
stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Stage rows, in render order.  The first five carry attributed modelled
#: seconds; ``retry`` and ``handoff`` are counted categories (0 seconds).
CRITICAL_STAGES = (
    "batch_wait", "queue", "compile", "device", "replay", "retry", "handoff"
)

#: Leaf-span names that carry attributed seconds directly.
_LEAF_STAGES = ("batch_wait", "queue", "compile", "device")

#: Root span names that denote one request (fleet or single-service).
_REQUEST_ROOTS = ("fleet.request", "request")


@dataclass
class RequestPath:
    """One request's latency, partitioned into stages."""

    trace_id: str
    rid: object = None
    latency_s: float = 0.0
    worker: str = ""
    tenant: str = ""
    cf: object = None
    hops: int = 1
    stage_s: dict = field(default_factory=dict)
    retries: int = 0
    replays: int = 0

    @property
    def dominant_stage(self) -> str:
        """The stage eating the most of this request's latency."""
        if not self.stage_s:
            return ""
        return max(self.stage_s, key=lambda k: (self.stage_s[k], k))

    @property
    def attributed_s(self) -> float:
        return sum(self.stage_s.values())


@dataclass
class CriticalPathReport:
    """Aggregate attribution across every request in a trace file."""

    requests: list = field(default_factory=list)
    stage_total_s: dict = field(default_factory=dict)
    total_latency_s: float = 0.0
    p95_s: float = 0.0
    p95_tail_coverage: float = 1.0
    p95_tail_stage_s: dict = field(default_factory=dict)
    by_worker: list = field(default_factory=list)   # (worker, seconds, n)
    by_tenant: list = field(default_factory=list)
    by_cf: list = field(default_factory=list)
    handoffs: int = 0
    retries: int = 0
    replays: int = 0

    @property
    def coverage(self) -> float:
        """Attributed seconds over total latency (exact: 1.0 by invariant)."""
        if not self.total_latency_s:
            return 1.0
        return (
            sum(r.attributed_s for r in self.requests) / self.total_latency_s
        )


class CriticalPathAnalyzer:
    """Pivot a span/event list into per-stage latency attribution."""

    def __init__(self, spans, events) -> None:
        self.spans = list(spans)
        self.events = list(events)
        self._spans_by_trace: dict[str, list] = {}
        for s in self.spans:
            self._spans_by_trace.setdefault(s.trace_id, []).append(s)
        self._events_by_trace: dict[str, list] = {}
        for e in self.events:
            self._events_by_trace.setdefault(e.trace_id, []).append(e)

    # ------------------------------------------------------------------
    def request_paths(self) -> list[RequestPath]:
        """One :class:`RequestPath` per request trace, in file order."""
        out = []
        for trace_id, spans in self._spans_by_trace.items():
            roots = [
                s
                for s in spans
                if s.parent_id is None and s.name in _REQUEST_ROOTS
            ]
            if len(roots) != 1:
                continue  # SLO episodes, event-only traces, malformed
            out.append(self._path(trace_id, roots[0], spans))
        return out

    def _path(self, trace_id: str, root, spans) -> RequestPath:
        events = self._events_by_trace.get(trace_id, ())
        replay_times = [e.time for e in events if e.name == "fleet.replay"]
        # The serving hop (or the single-service root itself) carries the
        # request attrs; under a fleet root it is the span with a hop attr.
        hops = [s for s in spans if "hop" in s.attrs]
        detail = max(hops, key=lambda s: s.attrs["hop"]) if hops else root
        path = RequestPath(
            trace_id=trace_id,
            rid=root.attrs.get("rid", detail.attrs.get("rid")),
            latency_s=root.duration,
            worker=str(detail.attrs.get("worker", "")),
            tenant=str(
                root.attrs.get("tenant", detail.attrs.get("tenant", ""))
            ),
            cf=detail.attrs.get("cf"),
            hops=len(hops) if hops else 1,
            retries=sum(1 for e in events if e.name == "resilience.retry"),
            replays=len(replay_times),
        )
        stage_s: dict[str, float] = {}
        parent_ids = {s.parent_id for s in spans if s.parent_id is not None}
        for s in spans:
            if s.span_id in parent_ids or s.parent_id is None:
                continue  # only true leaves carry attributed seconds
            name = s.name if s.name in _LEAF_STAGES else "other"
            seconds = s.duration
            if name == "batch_wait" and replay_times:
                # Wait accrued before the last reroute was spent on a
                # worker that never served the request: charge it to
                # ``replay``, keep the remainder as genuine batch wait.
                cut = min(max(max(replay_times), s.start), s.end)
                stage_s["replay"] = stage_s.get("replay", 0.0) + (cut - s.start)
                seconds = s.end - cut
            stage_s[name] = stage_s.get(name, 0.0) + seconds
        if not parent_ids and root.parent_id is None:
            # A childless root (e.g. a shed recorded as a bare span) is
            # its own leaf; nothing to partition.
            stage_s.setdefault("other", root.duration)
        path.stage_s = stage_s
        return path

    # ------------------------------------------------------------------
    def report(self) -> CriticalPathReport:
        report = CriticalPathReport(requests=self.request_paths())
        for path in report.requests:
            report.total_latency_s += path.latency_s
            for stage, seconds in path.stage_s.items():
                report.stage_total_s[stage] = (
                    report.stage_total_s.get(stage, 0.0) + seconds
                )
        report.retries = sum(p.retries for p in report.requests)
        report.replays = sum(p.replays for p in report.requests)
        report.handoffs = sum(
            1 for e in self.events if e.name == "fleet.handoff"
        )
        latencies = [p.latency_s for p in report.requests]
        if latencies:
            report.p95_s = float(np.percentile(latencies, 95))
            tail = [p for p in report.requests if p.latency_s >= report.p95_s]
            tail_total = sum(p.latency_s for p in tail)
            named = 0.0
            for p in tail:
                for stage, seconds in p.stage_s.items():
                    if stage in CRITICAL_STAGES:
                        named += seconds
                    report.p95_tail_stage_s[stage] = (
                        report.p95_tail_stage_s.get(stage, 0.0) + seconds
                    )
            report.p95_tail_coverage = named / tail_total if tail_total else 1.0
        report.by_worker = _rank(report.requests, lambda p: p.worker)
        report.by_tenant = _rank(report.requests, lambda p: p.tenant)
        report.by_cf = _rank(report.requests, lambda p: p.cf)
        return report


def _rank(paths, keyfn) -> list[tuple]:
    """(key, attributed seconds, request count), hottest first."""
    seconds: dict = {}
    counts: dict = {}
    for p in paths:
        key = keyfn(p)
        if key in ("", None):
            continue
        seconds[key] = seconds.get(key, 0.0) + p.latency_s
        counts[key] = counts.get(key, 0) + 1
    return sorted(
        ((k, seconds[k], counts[k]) for k in seconds),
        key=lambda row: (-row[1], str(row[0])),
    )


def analyze(spans, events) -> CriticalPathReport:
    """Convenience: one-shot report from loaded trace records."""
    return CriticalPathAnalyzer(spans, events).report()


def format_critical_path(report: CriticalPathReport) -> str:
    """Human-readable attribution tables (deterministic ordering)."""
    n = len(report.requests)
    lines = [
        f"critical path: {n} requests, "
        f"{report.total_latency_s * 1e3:.3f} ms total modelled latency",
        f"  p95 latency {report.p95_s * 1e3:.3f} ms; p95-tail attribution "
        f"coverage {report.p95_tail_coverage:.1%}",
        "",
        f"  {'stage':<12} {'total ms':>12} {'share':>7} {'p95-tail ms':>12}",
    ]
    for stage in CRITICAL_STAGES:
        total = report.stage_total_s.get(stage, 0.0)
        share = total / report.total_latency_s if report.total_latency_s else 0.0
        tail = report.p95_tail_stage_s.get(stage, 0.0)
        lines.append(
            f"  {stage:<12} {total * 1e3:>12.3f} {share:>6.1%} {tail * 1e3:>12.3f}"
        )
    other = report.stage_total_s.get("other", 0.0)
    if other:
        lines.append(f"  {'(other)':<12} {other * 1e3:>12.3f}")
    lines.append("")
    lines.append(
        f"  events: {report.retries} retries, {report.replays} replays, "
        f"{report.handoffs} handoffs"
    )
    for title, rows in (
        ("worker", report.by_worker),
        ("tenant", report.by_tenant),
        ("cf", report.by_cf),
    ):
        if not rows:
            continue
        lines.append(f"  hottest by {title}:")
        for key, seconds, count in rows[:5]:
            lines.append(
                f"    {str(key):<10} {seconds * 1e3:>10.3f} ms over {count} requests"
            )
    return "\n".join(lines)
