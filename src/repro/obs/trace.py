"""Structured tracing over the modelled clock.

A :class:`Tracer` records completed :class:`Span` intervals and
zero-duration :class:`TraceEvent` annotations, grouped by trace ID.  All
times are *modelled* seconds from the analytical timing model — spans are
recorded after the fact with explicit start/end, not measured with a
wall clock — which is what makes trace files reproducible byte-for-byte.

The serving layer's contract (enforced by :func:`validate_trace` and the
``tests/obs`` suite) is:

* child span intervals nest inside their parent's interval;
* leaf span durations sum exactly to the root span's duration, so every
  modelled nanosecond of a request's latency is attributed to exactly
  one stage (``batch_wait`` / ``queue`` / ``compile`` / ``device``).

Zero-duration spans (e.g. a cache-hit ``compile``) are legal leaves:
they attribute *events* without perturbing the sum.

Fleet traces (PR 8) extend the shape without changing the invariants: a
``fleet.request`` root spans arrival to finish, and each worker-side
``request`` span — one per *hop*, carrying ``worker``/``tenant``/``hop``
attrs from the :class:`~repro.obs.context.TraceContext` the router
stamped — parents onto it via a pre-allocated span ID.
:func:`validate_trace` additionally checks every hop subtree's leaves
sum to that hop's duration, so latency attribution stays exact per
worker even when a request was spilled or replayed across the fleet.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.ids import IdSource


@dataclass(frozen=True)
class Span:
    """One completed interval on a trace's modelled timeline."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_record(self) -> dict:
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class TraceEvent:
    """A point-in-time annotation attached to a trace (and optionally a span)."""

    trace_id: str
    span_id: str | None
    name: str
    time: float
    attrs: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        return {
            "type": "event",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "time": self.time,
            "attrs": self.attrs,
        }


class Tracer:
    """Deterministic span/event recorder with a seeded ID source."""

    def __init__(self, seed: int = 0) -> None:
        self.ids = IdSource(seed)
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._listeners: list = []

    # ------------------------------------------------------------------
    def new_trace(self) -> str:
        """Mint a fresh trace ID (one per request on the serving path)."""
        return self.ids.trace_id()

    def new_span_id(self) -> str:
        """Pre-allocate a span ID (the fleet root is completed after its
        children, so its ID must exist before any hop span parents on it)."""
        return self.ids.span_id()

    def add_listener(self, listener) -> None:
        """Register an observer (``on_span(span)`` / ``on_event(event)``).

        The flight recorder uses this to shadow recent spans into its
        ring; with no listeners the recording path is unchanged.
        """
        self._listeners.append(listener)

    def record_span(
        self,
        trace_id: str,
        name: str,
        start: float,
        end: float,
        *,
        parent: Span | None = None,
        parent_id: str | None = None,
        span_id: str | None = None,
        **attrs,
    ) -> Span:
        """Record a completed span; returns it so callers can parent children.

        ``parent`` takes a completed :class:`Span`; ``parent_id`` takes a
        pre-allocated ID for parents recorded later (the fleet root).
        ``span_id`` records the span under a pre-allocated ID.
        """
        if end < start:
            raise ConfigError(f"span {name!r} ends before it starts ({end} < {start})")
        if parent is not None:
            parent_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=span_id if span_id is not None else self.ids.span_id(),
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        for listener in self._listeners:
            listener.on_span(span)
        return span

    def record_event(
        self,
        trace_id: str,
        name: str,
        time: float,
        *,
        span: Span | None = None,
        **attrs,
    ) -> TraceEvent:
        event = TraceEvent(
            trace_id=trace_id,
            span_id=span.span_id if span is not None else None,
            name=name,
            time=time,
            attrs=dict(attrs),
        )
        self.events.append(event)
        for listener in self._listeners:
            listener.on_event(event)
        return event

    # ------------------------------------------------------------------
    def trace_ids(self) -> list[str]:
        """Distinct trace IDs, in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.trace_id, None)
        for e in self.events:
            seen.setdefault(e.trace_id, None)
        return list(seen)

    def spans_for(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def events_for(self, trace_id: str) -> list[TraceEvent]:
        return [e for e in self.events if e.trace_id == trace_id]

    def root(self, trace_id: str) -> Span:
        roots = [s for s in self.spans_for(trace_id) if s.parent_id is None]
        if len(roots) != 1:
            raise ConfigError(
                f"trace {trace_id} has {len(roots)} root spans; expected exactly 1"
            )
        return roots[0]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def leaves(self, trace_id: str) -> list[Span]:
        spans = self.spans_for(trace_id)
        parent_ids = {s.parent_id for s in spans if s.parent_id is not None}
        return [s for s in spans if s.span_id not in parent_ids]

    # ------------------------------------------------------------------
    def to_jsonl_str(self) -> str:
        """The trace file contents as a string (byte-stable; see
        :meth:`to_jsonl`) — what determinism checks compare without
        touching the filesystem."""
        lines = [
            json.dumps(r.to_record(), sort_keys=True, separators=(",", ":"))
            for r in [*self.spans, *self.events]
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_jsonl(self, path) -> Path:
        """Write every span and event as one JSON object per line.

        Records are ordered spans-then-events in recording order, and keys
        are sorted, so two runs with the same seed produce byte-identical
        files (all values come from the modelled clock — never wall time).
        """
        path = Path(path)
        path.write_text(self.to_jsonl_str())
        return path


def validate_trace(tracer: Tracer, trace_id: str, *, tol: float = 1e-9) -> None:
    """Check the span-tree invariants for one trace; raises on violation.

    1. Exactly one root span.
    2. Every child's interval nests inside its parent's interval.  For a
       fleet trace this is also the cross-worker link check: a hop span
       whose ``fleet.request`` root was never completed (or whose
       pre-allocated parent ID does not resolve) fails here.
    3. Leaf durations sum to the root duration (every modelled second of
       the root is attributed to exactly one leaf stage).
    4. Per hop: every span carrying a ``hop`` attr (a worker-side
       ``request`` span stamped from a
       :class:`~repro.obs.context.TraceContext`) must have its own
       subtree's leaves sum to its duration — attribution stays exact
       per worker, not just per request.
    """
    root = tracer.root(trace_id)
    spans = tracer.spans_for(trace_id)
    by_id = {s.span_id: s for s in spans}
    children: dict[str, list[Span]] = {}
    for s in spans:
        if s.parent_id is None:
            continue
        parent = by_id.get(s.parent_id)
        if parent is None:
            raise ConfigError(f"span {s.name!r} has unknown parent {s.parent_id}")
        children.setdefault(s.parent_id, []).append(s)
        if s.start < parent.start - tol or s.end > parent.end + tol:
            raise ConfigError(
                f"span {s.name!r} [{s.start}, {s.end}] escapes parent "
                f"{parent.name!r} [{parent.start}, {parent.end}]"
            )
    leaf_sum = sum(s.duration for s in tracer.leaves(trace_id))
    if abs(leaf_sum - root.duration) > tol:
        raise ConfigError(
            f"trace {trace_id}: leaf durations sum to {leaf_sum}, root "
            f"span {root.name!r} lasts {root.duration}"
        )
    for hop in spans:
        if "hop" not in hop.attrs:
            continue
        subtree_leaf_sum = sum(
            s.duration for s in _subtree(hop, children) if s.span_id not in children
        )
        if abs(subtree_leaf_sum - hop.duration) > tol:
            raise ConfigError(
                f"trace {trace_id} hop {hop.attrs['hop']} "
                f"(worker {hop.attrs.get('worker')!r}): subtree leaves sum to "
                f"{subtree_leaf_sum}, hop span lasts {hop.duration}"
            )


def _subtree(span: Span, children: dict[str, list[Span]]) -> list[Span]:
    """``span`` plus every descendant, depth-first."""
    out = [span]
    for child in children.get(span.span_id, ()):
        out.extend(_subtree(child, children))
    return out
