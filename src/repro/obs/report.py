"""Render a per-stage latency/byte breakdown from a JSONL trace file.

``repro obs-report trace.jsonl`` answers "where did the modelled latency
go" for a serving trace: total and mean modelled milliseconds per stage
(``batch_wait`` / ``queue`` / ``compile`` / ``device``), each stage's
share of summed request latency, retry/degradation event counts from the
resilience layer, and bytes in/out with the achieved compression ratio.

Fleet traces (PR 8) are first-class: a ``fleet.request`` root counts as
one request, its byte/platform attrs are read from the worker-side hop
spans (the root carries routing attrs instead), and stage spans carrying
``worker``/``tenant`` labels feed grouped views — ``--by-worker`` is
rendered whenever more than one worker appears, ``--by-tenant`` on
request.  Non-request traces in the same file (SLO alert episodes,
fleet lifecycle annotations) are ignored rather than miscounted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.trace import Span, TraceEvent

# The serving span taxonomy (docs/OBSERVABILITY.md); report rows keep
# this order so two runs render identically.
STAGES = ("batch_wait", "queue", "compile", "device")

# Root span names that denote one request (single-service or fleet).
REQUEST_ROOTS = ("request", "fleet.request")


def load_trace(path) -> tuple[list[Span], list[TraceEvent]]:
    """Parse a :meth:`~repro.obs.trace.Tracer.to_jsonl` file back into records."""
    spans: list[Span] = []
    events: list[TraceEvent] = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        kind = rec.get("type")
        if kind == "span":
            spans.append(
                Span(
                    trace_id=rec["trace_id"],
                    span_id=rec["span_id"],
                    parent_id=rec.get("parent_id"),
                    name=rec["name"],
                    start=rec["start"],
                    end=rec["end"],
                    attrs=rec.get("attrs", {}),
                )
            )
        elif kind == "event":
            events.append(
                TraceEvent(
                    trace_id=rec["trace_id"],
                    span_id=rec.get("span_id"),
                    name=rec["name"],
                    time=rec["time"],
                    attrs=rec.get("attrs", {}),
                )
            )
        else:
            raise ConfigError(f"{path}:{lineno}: unknown record type {kind!r}")
    return spans, events


@dataclass
class TraceReport:
    """Aggregated view of one trace file."""

    n_traces: int = 0
    n_failed: int = 0
    stage_total_s: dict[str, float] = field(default_factory=dict)
    stage_count: dict[str, int] = field(default_factory=dict)
    total_latency_s: float = 0.0
    event_counts: dict[str, int] = field(default_factory=dict)
    bytes_in: int = 0
    bytes_out: int = 0
    platforms: dict[str, int] = field(default_factory=dict)
    # Fleet groupings: worker/tenant -> stage -> seconds (and counts).
    worker_stage_s: dict[str, dict[str, float]] = field(default_factory=dict)
    worker_requests: dict[str, int] = field(default_factory=dict)
    tenant_stage_s: dict[str, dict[str, float]] = field(default_factory=dict)
    tenant_requests: dict[str, int] = field(default_factory=dict)
    tenant_latency_s: dict[str, float] = field(default_factory=dict)

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.n_traces if self.n_traces else 0.0

    @property
    def retries(self) -> int:
        return self.event_counts.get("resilience.retry", 0)

    @property
    def degradations(self) -> int:
        return self.event_counts.get("resilience.rung", 0)


def render_report(spans: list[Span], events: list[TraceEvent]) -> TraceReport:
    """Aggregate spans/events into a :class:`TraceReport`."""
    report = TraceReport()
    roots = [
        s for s in spans if s.parent_id is None and s.name in REQUEST_ROOTS
    ]
    report.n_traces = len(roots)
    # Hop spans carry the request attrs a fleet root delegates (platform,
    # bytes, tenant); index the final hop per trace for attr resolution.
    final_hop: dict[str, Span] = {}
    for s in spans:
        if "hop" not in s.attrs:
            continue
        seen = final_hop.get(s.trace_id)
        if seen is None or s.attrs["hop"] > seen.attrs["hop"]:
            final_hop[s.trace_id] = s
    tenant_of: dict[str, str] = {}
    for root in roots:
        detail = (
            final_hop.get(root.trace_id, root)
            if root.name == "fleet.request"
            else root
        )
        report.total_latency_s += root.duration
        platform = detail.attrs.get("platform")
        if platform:
            report.platforms[platform] = report.platforms.get(platform, 0) + 1
        report.bytes_in += int(detail.attrs.get("bytes_in", 0))
        report.bytes_out += int(detail.attrs.get("bytes_out", 0))
        worker = str(detail.attrs.get("worker", ""))
        if worker:
            report.worker_requests[worker] = (
                report.worker_requests.get(worker, 0) + 1
            )
        tenant = str(
            root.attrs.get("tenant", detail.attrs.get("tenant", ""))
        )
        if tenant:
            tenant_of[root.trace_id] = tenant
            report.tenant_requests[tenant] = (
                report.tenant_requests.get(tenant, 0) + 1
            )
            report.tenant_latency_s[tenant] = (
                report.tenant_latency_s.get(tenant, 0.0) + root.duration
            )
    for span in spans:
        if span.parent_id is None or span.name not in STAGES:
            continue
        report.stage_total_s[span.name] = report.stage_total_s.get(span.name, 0.0) + span.duration
        report.stage_count[span.name] = report.stage_count.get(span.name, 0) + 1
        worker = str(span.attrs.get("worker", ""))
        if worker:
            per = report.worker_stage_s.setdefault(worker, {})
            per[span.name] = per.get(span.name, 0.0) + span.duration
        tenant = tenant_of.get(span.trace_id)
        if tenant:
            per = report.tenant_stage_s.setdefault(tenant, {})
            per[span.name] = per.get(span.name, 0.0) + span.duration
    for event in events:
        report.event_counts[event.name] = report.event_counts.get(event.name, 0) + 1
    report.n_failed = report.event_counts.get("request.failed", 0)
    return report


def format_report(
    report: TraceReport,
    *,
    by_worker: bool | None = None,
    by_tenant: bool = False,
) -> str:
    """Human-readable per-stage breakdown table.

    ``by_worker=None`` (the default) renders the per-worker grouping
    automatically when the trace names more than one worker — a fleet
    trace reads grouped, a single-service trace stays unchanged.
    """
    lines = [
        f"trace report: {report.n_traces} requests"
        + (f" ({report.n_failed} failed)" if report.n_failed else ""),
        f"  total modelled latency {report.total_latency_s * 1e3:.3f} ms "
        f"(mean {report.mean_latency_s * 1e3:.3f} ms/request)",
        "",
        f"  {'stage':<12} {'total ms':>12} {'mean ms':>10} {'share':>7}",
    ]
    for stage in STAGES:
        total = report.stage_total_s.get(stage, 0.0)
        count = report.stage_count.get(stage, 0)
        mean = total / count if count else 0.0
        share = total / report.total_latency_s if report.total_latency_s else 0.0
        lines.append(
            f"  {stage:<12} {total * 1e3:>12.3f} {mean * 1e3:>10.4f} {share:>6.1%}"
        )
    lines.append("")
    lines.append(
        f"  resilience: {report.retries} retries, {report.degradations} "
        f"ladder degradations"
    )
    if report.bytes_in:
        ratio = report.bytes_in / report.bytes_out if report.bytes_out else 0.0
        lines.append(
            f"  bytes: {report.bytes_in:,} in -> {report.bytes_out:,} out "
            f"({ratio:.2f}x compression)"
        )
    for platform in sorted(report.platforms):
        lines.append(f"  platform {platform}: {report.platforms[platform]} requests")
    if by_worker is None:
        by_worker = len(report.worker_stage_s) > 1
    if by_worker and report.worker_stage_s:
        lines.append("")
        lines.append(f"  {'worker':<8} {'requests':>9} " + " ".join(
            f"{s + ' ms':>14}" for s in STAGES
        ))
        for worker in sorted(report.worker_stage_s):
            per = report.worker_stage_s[worker]
            lines.append(
                f"  {worker:<8} {report.worker_requests.get(worker, 0):>9} "
                + " ".join(f"{per.get(s, 0.0) * 1e3:>14.3f}" for s in STAGES)
            )
    if by_tenant and report.tenant_stage_s:
        lines.append("")
        lines.append(f"  {'tenant':<10} {'requests':>9} {'latency ms':>11} " + " ".join(
            f"{s + ' ms':>14}" for s in STAGES
        ))
        for tenant in sorted(report.tenant_stage_s):
            per = report.tenant_stage_s[tenant]
            lines.append(
                f"  {tenant:<10} {report.tenant_requests.get(tenant, 0):>9} "
                f"{report.tenant_latency_s.get(tenant, 0.0) * 1e3:>11.3f} "
                + " ".join(f"{per.get(s, 0.0) * 1e3:>14.3f}" for s in STAGES)
            )
    return "\n".join(lines)
