"""Seeded trace/span ID source.

Real tracing systems mint random 128/64-bit IDs; this repo's north star
is determinism (CI replays the same trace byte-for-byte), so IDs come
from a seeded generator instead of ``os.urandom``.  Two :class:`IdSource`
instances with the same seed issue the same sequence.
"""

from __future__ import annotations

import numpy as np


class IdSource:
    """Deterministic hex ID generator for traces and spans."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def trace_id(self) -> str:
        """A 16-hex-digit trace identifier."""
        return f"{int(self._rng.integers(0, 2**64, dtype=np.uint64)):016x}"

    def span_id(self) -> str:
        """A 16-hex-digit span identifier."""
        return f"{int(self._rng.integers(0, 2**64, dtype=np.uint64)):016x}"
