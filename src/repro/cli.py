"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table {1,2,3}``
    Print a paper table.
``figure <figNN>``
    Regenerate a paper figure's data series (see ``figure --list``).
``platforms``
    Show the registered accelerator simulators.
``bench``
    Model one compressor configuration on one platform.
``compress`` / ``decompress``
    Compress a ``.npy`` array into a ``.dcz`` container and back.
``autotune``
    Pick the highest ratio meeting a PSNR floor on calibration data.
``inspect``
    Compile a compressor for a platform and print the profiler-style
    report (traced ops, cost, timing-term breakdown, energy).
``resilience-demo``
    Script a fault plan (transient link fault, mid-training device loss,
    SN30 512x512 OOM) and show the resilience layer recovering each one.
``serve-demo``
    Replay a seeded synthetic request trace through the serving layer
    (plan cache + dynamic batcher + scheduler), print the stats table,
    and verify cache hit rate, batching speedup, and bit-identity
    against the unbatched path.  ``--trace-out PATH`` additionally
    attaches a :class:`~repro.obs.trace.Tracer` and writes every
    request's span tree as JSONL; ``--metrics-out PATH`` dumps the
    metrics registry in Prometheus text format.  ``--deadline S``
    attaches an :class:`~repro.serve.overload.OverloadPolicy` giving
    every request a relative deadline; ``--shed-policy degrade``
    re-admits predicted misses at a cheaper chop factor instead of
    shedding them.  Exits 2 when any SLO check fails.
``chaos-soak``
    Replay a seeded fault storm through the overload-hardened service
    and check the chaos contract: accepted outputs bit-identical to the
    unfaulted compressor, every request accounted for, p95 within
    budget, and a full breaker recovery cycle.  With ``--fleet``, soak a
    multi-worker fleet instead: a seeded storm crashes/hangs workers
    mid-trace while the fleet contract is checked (bit-identity, full
    per-tenant accounting, per-tenant p95, weighted-fair quotas with no
    starvation, every crashed worker rejoining warm).  ``--slo`` (fleet
    mode) turns on the observatory: cross-worker trace propagation,
    burn-rate alerting, critical-path attribution, and the flight
    recorder, plus the determinism / attribution / zero-overhead
    checks; ``--trace-out PATH`` writes the instrumented run's trace
    JSONL.  Exits 2 on failure.
``fleet-demo``
    Replay a multi-tenant trace through the sharded fleet
    (:mod:`repro.fleet`): consistent-hash routing with bounded-load
    spill, a worker crash storm with warm plan-cache handoff, and
    queue/p95-driven autoscaling over the simulated instance pool.
    Prints the fleet stats table; exits 2 when accounting, bit-identity,
    or recovery checks fail.  ``--slo`` attaches the SLO observatory
    (tracer + burn-rate monitor + flight recorder): the alert timeline
    is printed, every span tree is validated, and ``--trace-out`` /
    ``--metrics-out`` dump the trace JSONL and Prometheus metrics.
``obs-report``
    Render a per-stage latency / byte breakdown from a trace JSONL file
    written by ``serve-demo --trace-out`` or ``fleet-demo --trace-out``.
    ``--by-worker`` / ``--by-tenant`` add grouped fleet views (the
    per-worker grouping renders automatically when a trace names more
    than one worker).
``slo-report``
    Critical-path attribution from a trace JSONL file: per-stage totals
    (queue / batch wait / compile / device / retry / replay / handoff),
    p95-tail attribution coverage, the hottest workers / tenants / chop
    factors, and the SLO alert timeline embedded in the trace.
    ``--min-coverage`` turns the attribution bar into an exit code.

Global flags: ``--quiet`` suppresses informational diagnostics,
``--verbose`` enables debug-level ones (both route through
:mod:`repro.obs.log`).
"""

from __future__ import annotations

import argparse
import functools
import json
import sys

import numpy as np

from repro.errors import CompileError, ConfigError, DeviceError, IntegrityError


def _guarded(fn):
    """Catch expected I/O and validation failures at the command boundary.

    Users get a one-line message and exit code 2 instead of a traceback.
    """

    @functools.wraps(fn)
    def wrapper(args) -> int:
        try:
            return fn(args)
        except (OSError, IntegrityError, ConfigError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapper


def _cmd_table(args) -> int:
    from repro.harness import format_table, table1, table2, table3

    tables = {
        "1": lambda: format_table(table1(), "Table 1: Accelerator specifications"),
        "2": lambda: format_table(table2(), "Table 2: Image datasets"),
        "3": lambda: format_table(table3(args.scale), "Table 3: Evaluation benchmarks"),
    }
    print(tables[args.number]())
    return 0


def _cmd_figure(args) -> int:
    from repro.harness.figures import FIGURES

    if args.list or args.name is None:
        print("available figures:", ", ".join(sorted(FIGURES)))
        return 0
    fn = FIGURES.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}; try --list", file=sys.stderr)
        return 2
    kwargs = {}
    if args.name in ("fig07", "fig08", "fig16"):
        kwargs["scale"] = args.scale
        if args.epochs:
            kwargs["epochs"] = args.epochs
    print(fn(**kwargs))
    return 0


def _cmd_platforms(args) -> int:
    from repro.accel import get_platform, platform_names
    from repro.accel.spec import GB, MB

    for name in platform_names():
        spec = get_platform(name)
        ocm = (
            f"{spec.onchip_memory_bytes / GB:.0f} GB"
            if spec.onchip_memory_bytes >= GB
            else f"{spec.onchip_memory_bytes / MB:.0f} MB"
        )
        print(
            f"{name:>6}: {spec.vendor:<10} {spec.architecture:<9} "
            f"{spec.compute_units:>7} CUs, {ocm:>7} on-chip — {spec.notes}"
        )
    return 0


def _cmd_bench(args) -> int:
    from repro.harness import measure

    if args.suite:
        return _bench_suite(args)
    if args.faults or args.max_retries is not None:
        return _bench_resilient(args)
    point = measure(
        args.platform,
        resolution=args.resolution,
        cf=args.cf,
        direction=args.direction,
        batch=args.batch,
        channels=args.channels,
        method=args.method,
        s=args.s,
    )
    if point.status != "ok":
        print(f"compile error on {args.platform}: {point.reason}")
        return 1
    print(
        f"{args.platform} {args.direction} {args.method} cf={args.cf} "
        f"(CR {point.ratio:.2f}) on {args.batch}x{args.channels}x"
        f"{args.resolution}x{args.resolution}:"
    )
    print(f"  modelled time:  {point.seconds * 1e3:10.3f} ms")
    print(f"  throughput:     {point.throughput_gbps:10.2f} GB/s (vs uncompressed)")
    return 0


def _bench_suite(args) -> int:
    """Run the seeded wall-clock micro-benchmark suite (repro.bench).

    Exit codes: 0 = ok, 1 = usage/IO problem, 2 = perf regression or
    bit-identity failure against the baseline.
    """
    from repro import bench

    if args.refresh:
        if not args.out:
            print("--refresh needs --out to write the merged baseline", file=sys.stderr)
            return 1
        reports = [
            bench.run_suite(seed=args.seed, repeats=args.repeats, workers=args.workers)
            for _ in range(args.refresh)
        ]
        merged = bench.merge_reports(reports)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"merged {args.refresh} suite runs -> {args.out} "
            f"(median speedup {merged['median_speedup']:.2f}x, "
            f"parallel {merged['median_parallel_speedup']:.2f}x)"
        )
        return 0

    report = bench.run_suite(
        seed=args.seed, repeats=args.repeats, workers=args.workers
    )
    print(
        f"bench suite: {len(report.cases)} cases, seed={report.seed}, "
        f"repeats={report.repeats}, calibration {report.calibration_s * 1e3:.3f} ms"
    )
    for s in report.speedups:
        marker = "" if s.identical else "  [OUTPUT MISMATCH]"
        print(
            f"  n={s.n} cf={s.cf} {s.direction}: dense {s.dense_median_s * 1e3:.2f} ms"
            f" -> fast {s.fast_median_s * 1e3:.2f} ms ({s.speedup:.1f}x){marker}"
        )
    print(f"  median fast-path speedup at n=512: {report.median_speedup:.2f}x")
    for p in report.parallel:
        marker = "" if p.identical else "  [OUTPUT MISMATCH]"
        print(
            f"  n={p.n} cf={p.cf} parallel w={p.workers}: serial "
            f"{p.serial_median_s * 1e3:.2f} ms -> "
            f"{p.parallel_median_s * 1e3:.2f} ms ({p.speedup:.2f}x){marker}"
        )
    print(
        f"  median parallel speedup at n=512 (w={args.workers}): "
        f"{report.median_parallel_speedup:.2f}x"
    )
    for row in report.precision:
        print(
            f"  precision {row['name']}: ratio {row['ratio']:.1f}x "
            f"nrmse {row['nrmse']:.5f} psnr {row['psnr']:.1f} dB "
            f"roundtrip {row['median_s'] * 1e3:.2f} ms"
        )
    if args.out:
        report.write(args.out)
        print(f"wrote {args.out}")
    if not args.baseline:
        return 0
    try:
        baseline = bench.load_baseline(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"cannot load baseline {args.baseline}: {exc}", file=sys.stderr)
        return 1
    result = bench.compare(report, baseline, tolerance=args.tolerance)
    if result.regressions and not result.failures:
        # Timing-only regressions must reproduce on an immediate rerun
        # before they fail the gate: a sustained slow phase on a shared
        # host shifts whole runs, and one sample of one phase is not
        # evidence the code got slower.  Hard failures (bit-identity,
        # checksum-backed) never get this second chance.
        print(
            f"bench: {len(result.regressions)} timing regression(s); "
            "re-running suite once to confirm"
        )
        rerun = bench.run_suite(
            seed=args.seed, repeats=args.repeats, workers=args.workers
        )
        confirm = bench.compare(rerun, baseline, tolerance=args.tolerance)
        confirmed_keys = {line.split(":", 1)[0] for line in confirm.regressions}
        result.regressions = [
            line
            for line in result.regressions
            if line.split(":", 1)[0] in confirmed_keys
        ]
        result.failures.extend(confirm.failures)
    for warning in result.warnings:
        print(f"warning: {warning}")
    for line in result.regressions + result.failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    if not result.ok:
        print(
            f"bench: {len(result.regressions) + len(result.failures)} "
            f"regression(s) vs {args.baseline}",
            file=sys.stderr,
        )
        return 2
    print(f"bench: no regressions vs {args.baseline}")
    return 0


@_guarded
def _bench_resilient(args) -> int:
    """Bench through the resilience layer: ladder compile + retried run."""
    from repro.faults import FaultInjector, FaultPlan
    from repro.resilience import RecoveryLog, ResilientCompressor, RetryPolicy

    plan = FaultPlan.load(args.faults) if args.faults else FaultPlan()
    log = RecoveryLog()
    rc = ResilientCompressor(
        args.resolution,
        platform=args.platform,
        method=args.method,
        cf=args.cf,
        s=args.s,
        batch=args.batch,
        channels=args.channels,
        retry=RetryPolicy(max_retries=args.max_retries if args.max_retries is not None else 3),
        log=log,
    )
    with FaultInjector(plan):
        try:
            result = rc.compile(args.direction)
        except CompileError as exc:
            print(f"unrecoverable compile error: {exc}", file=sys.stderr)
            print(log.summary(), file=sys.stderr)
            return 1
        if args.direction == "compress" and any(f.site == "run" for f in plan.faults):
            shape = (args.batch, args.channels, args.resolution, args.resolution)
            try:
                rc.compress(np.zeros(shape, np.float32))
            except DeviceError as exc:
                print(f"unrecoverable device fault: {exc}", file=sys.stderr)
                print(log.summary(), file=sys.stderr)
                return 1
    attempt = result.attempt
    per_run = result.program.estimated_time() * attempt.n_devices
    print(
        f"{args.platform} {args.direction} resolved to [{attempt.describe()}] "
        f"(CR {result.comp.ratio:.2f})"
    )
    print(f"  modelled time:  {per_run * 1e3:10.3f} ms")
    if log.events:
        print("recovery log:")
        print(log.summary())
    return 0


@_guarded
def _cmd_compress(args) -> int:
    from repro.core import container, make_compressor
    from repro.faults import FaultInjector, FaultPlan

    data = np.load(args.input).astype(np.float32)
    if data.ndim < 2:
        print("input must be at least 2-D", file=sys.stderr)
        return 2
    comp = make_compressor(
        data.shape[-2], data.shape[-1], method=args.method, cf=args.cf, s=args.s
    )
    plan = FaultPlan.load(args.faults) if args.faults else FaultPlan()
    with FaultInjector(plan) as inj:
        path = container.save(args.output, data, comp)
    blob = path.read_bytes()
    note = " [payload fault injected]" if inj.records else ""
    print(
        f"{args.input} ({data.nbytes} B) -> {path} ({len(blob)} B), "
        f"ratio {container.packed_ratio(blob):.2f}x{note}"
    )
    return 0


@_guarded
def _cmd_decompress(args) -> int:
    from repro.core import container

    rec, header = container.load(args.input)
    np.save(args.output, rec)
    print(
        f"{args.input} -> {args.output}: shape {tuple(header['shape'])}, "
        f"method {header['method']}, cf {header['cf']}"
    )
    return 0


def _cmd_resilience_demo(args) -> int:
    """End-to-end tour of the resilience layer under a scripted fault plan."""
    import tempfile
    from pathlib import Path

    from repro.data.loader import DataLoader, Dataset
    from repro.faults import FaultInjector, FaultPlan
    from repro.nn.layers import Conv2d, ReLU
    from repro.nn.losses import MSELoss
    from repro.nn.module import Sequential
    from repro.resilience import (
        RecoveryLog,
        ResilientCompressor,
        RetryPolicy,
        compile_with_ladder,
    )
    from repro.tensor.random import manual_seed
    from repro.train import TrainConfig, Trainer

    class _Identity(Dataset):
        """Tiny denoise-style set: reconstruct the input field."""

        def __init__(self, n=8, size=8):
            g = np.random.default_rng(42)
            self.xs = g.standard_normal((n, 1, size, size)).astype(np.float32)

        def __len__(self):
            return len(self.xs)

        def __getitem__(self, i):
            return self.xs[i], self.xs[i]

    def build_trainer():
        manual_seed(0)
        model = Sequential(Conv2d(1, 2, 3, padding=1), ReLU(), Conv2d(2, 1, 3, padding=1))
        return Trainer(model, MSELoss(), TrainConfig(epochs=3, lr=1e-2))

    def loaders():
        from repro.tensor.random import Generator

        data = _Identity()
        return (
            DataLoader(data, batch_size=4, shuffle=True, gen=Generator(1)),
            DataLoader(data, batch_size=4),
        )

    epochs, steps_per_epoch = 3, 2
    plan = (
        FaultPlan(seed=7)
        .add("run", "host_link_timeout", after=0)
        .add("compile", "oom", platform="sn30", after=0)
        # Fires on the second batch of the second epoch — mid-training.
        .add("train_step", "device_lost", after=steps_per_epoch + 1)
    )
    print("fault plan:")
    for f in plan.faults:
        print(f"  - {f.kind} at site {f.site!r}" + (f" on {f.platform}" if f.platform else ""))

    # Reference run, no faults, for the bit-identical-resume check.
    ref_trainer = build_trainer()
    ref_train, ref_test = loaders()
    ref_history = ref_trainer.fit(ref_train, ref_test, epochs)

    with FaultInjector(plan):
        # 1. Transient host-link fault: retried with backoff.
        print("\n[1] transient host-link fault during an IPU run")
        log1 = RecoveryLog()
        rc = ResilientCompressor(
            64,
            platform="ipu",
            batch=4,
            channels=1,
            retry=RetryPolicy(max_retries=3, sleep=lambda _s: None),
            log=log1,
        )
        rc.compress(np.zeros((4, 1, 64, 64), np.float32))
        print(log1.summary())
        retried = any(e.action == "recovered" for e in log1)

        # 2. SN30 512x512 OOM: recovered by the partial-serialization rung.
        print("\n[2] SN30 compile OOM at 512x512")
        log2 = RecoveryLog()
        result = compile_with_ladder(
            512, platform="sn30", batch=4, channels=1, log=log2
        )
        print(log2.summary())
        print(f"  -> resolved to [{result.attempt.describe()}]")
        ps_rung = result.attempt.rung == "ps"

        # 3. Mid-training device loss: resume from checkpoint.
        print("\n[3] device loss mid-epoch during training")
        log3 = RecoveryLog()
        trainer = build_trainer()
        train_loader, test_loader = loaders()
        with tempfile.TemporaryDirectory() as tmp:
            history = trainer.fit(
                train_loader,
                test_loader,
                epochs,
                checkpoint_path=Path(tmp) / "demo.ckpt",
                recovery_log=log3,
            )
        print(log3.summary())

    resumed = any(e.action == "restore" for e in log3)
    identical = history.final_train_loss == ref_history.final_train_loss
    print(
        f"\nfinal train loss: interrupted {history.final_train_loss:.6f} "
        f"vs uninterrupted {ref_history.final_train_loss:.6f} "
        f"({'identical' if identical else 'MISMATCH'})"
    )
    ok = retried and ps_rung and resumed and identical
    print("resilience demo:", "all recoveries verified" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_serve_demo(args) -> int:
    """Replay a synthetic trace through the serving layer and verify it."""
    from repro.core import make_compressor
    from repro.serve import CompressionService, synthetic_trace

    platforms = tuple(p.strip() for p in args.platforms.split(",") if p.strip())
    if not platforms:
        print("error: --platforms must name at least one platform", file=sys.stderr)
        return 2
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(seed=args.seed)

    def overload_policy():
        if args.deadline is None and args.shed_policy == "shed":
            return None
        from repro.serve import OverloadPolicy

        return OverloadPolicy(
            default_deadline=args.deadline, shed_policy=args.shed_policy
        )

    trace = synthetic_trace(args.requests, seed=args.seed)
    service = CompressionService(
        platforms,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        policy=args.policy,
        cache_capacity=args.cache_capacity,
        overload=overload_policy(),
        tracer=tracer,
    )
    print(
        f"replaying {args.requests} requests (seed {args.seed}) on "
        f"{','.join(platforms)} [policy {args.policy}, max_batch {args.max_batch}, "
        f"max_wait {args.max_wait * 1e3:g} ms"
        + (
            f", deadline {args.deadline * 1e3:g} ms, shed-policy {args.shed_policy}"
            if args.deadline is not None
            else ""
        )
        + "]\n"
    )
    responses, stats = service.process(trace)
    print(stats.format_table())

    # Baseline: the pre-serving world — one instance, one request per run.
    sequential = CompressionService(
        (platforms[0],),
        max_batch=1,
        max_wait=0.0,
        policy=args.policy,
        cache_capacity=args.cache_capacity,
    )
    _, seq_stats = sequential.process(synthetic_trace(args.requests, seed=args.seed))
    speedup = seq_stats.busy_s / stats.busy_s if stats.busy_s else 0.0
    print(
        f"\nmodelled device time: batch=1 sequential {seq_stats.busy_s * 1e3:9.3f} ms"
        f"\n                      dynamic batching   {stats.busy_s * 1e3:9.3f} ms"
        f"  ({speedup:.2f}x reduction)"
    )

    # Bit-identity: every served image must equal the unbatched host path.
    compressors = {}
    mismatches = 0
    for r in responses:
        req = r.request
        key = req.key
        comp = compressors.get(key)
        if comp is None:
            comp = compressors[key] = make_compressor(
                key.height, key.width, method=key.method, cf=key.cf, s=key.s, block=key.block
            )
        ref = comp.compress(req.image[None]).numpy()[0]
        if not np.array_equal(ref, r.output):
            mismatches += 1

    checks = [
        ("zero failed requests", stats.n_failed == 0),
        (
            f"plan-cache hit rate {stats.cache_hit_rate:.1%} >= {args.min_hit_rate:.0%}",
            stats.cache_hit_rate >= args.min_hit_rate,
        ),
        (
            "dynamic batching reduces modelled device time",
            stats.n_batches > 0 and stats.busy_s < seq_stats.busy_s,
        ),
        (f"per-image outputs bit-identical ({mismatches} mismatches)", mismatches == 0),
    ]
    if stats.overload_active:
        accounted = len(responses) + stats.n_shed + stats.n_failed
        checks.append(
            (
                f"every request accounted for (served {len(responses)}, "
                f"shed {stats.n_shed}, degraded {stats.n_degraded})",
                accounted == stats.n_requests,
            )
        )

    if tracer is not None:
        from pathlib import Path

        from repro.obs import validate_trace

        by_tid = {r.trace_id: r for r in responses}
        bad_trees = bad_sums = 0
        for tid in tracer.trace_ids():
            try:
                validate_trace(tracer, tid)
            except ConfigError:
                bad_trees += 1
                continue
            resp = by_tid.get(tid)
            if resp is None:
                continue
            leaf_sum = sum(s.duration for s in tracer.leaves(tid))
            if abs(leaf_sum - resp.latency_s) > 1e-9:
                bad_sums += 1
        checks.append(
            (f"span trees valid ({bad_trees} invalid)", bad_trees == 0)
        )
        checks.append(
            (
                f"leaf span durations sum to reported latency ({bad_sums} mismatches)",
                bad_sums == 0,
            )
        )

        # Zero-overhead guard: an untraced replay of the same trace must be
        # bit-identical — tracing may observe the modelled clock, never move it.
        untraced = CompressionService(
            platforms,
            max_batch=args.max_batch,
            max_wait=args.max_wait,
            policy=args.policy,
            cache_capacity=args.cache_capacity,
            overload=overload_policy(),
        )
        plain_responses, plain_stats = untraced.process(
            synthetic_trace(args.requests, seed=args.seed)
        )
        identical = len(plain_responses) == len(responses) and all(
            np.array_equal(a.output, b.output)
            and a.start == b.start
            and a.finish == b.finish
            and a.platform == b.platform
            for a, b in zip(responses, plain_responses)
        ) and plain_stats.latencies_s == stats.latencies_s
        checks.append(("tracing is zero-overhead (untraced replay identical)", identical))

        out = Path(args.trace_out)
        tracer.to_jsonl(out)
        print(
            f"\nwrote {len(tracer.trace_ids())} traces to {out} "
            f"(render with: repro obs-report {out})"
        )

    if args.metrics_out:
        from pathlib import Path

        from repro.obs import get_registry

        Path(args.metrics_out).write_text(get_registry().render_prometheus())
        print(f"wrote metrics registry to {args.metrics_out}")
    print()
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    passed = all(ok for _, ok in checks)
    print("serve demo:", "all checks passed" if passed else "FAILED")
    # Exit 2 on SLO failure: the expected-failure convention every other
    # command boundary here uses (see _guarded), so scripts can tell a
    # failed check from a crashed demo.
    return 0 if passed else 2


@_guarded
def _cmd_chaos_soak(args) -> int:
    """Replay a seeded fault storm through the overload-hardened service."""
    from repro.chaos import SoakConfig, run_soak

    platforms = tuple(p.strip() for p in args.platforms.split(",") if p.strip())
    if not platforms:
        print("error: --platforms must name at least one platform", file=sys.stderr)
        return 2
    if args.fleet:
        from repro.chaos import FleetSoakConfig, run_fleet_soak

        fleet_config = FleetSoakConfig(
            seed=args.seed,
            n_requests=args.requests if args.requests is not None else 1200,
            n_workers=args.workers,
            worker_platforms=platforms,
            rate=args.rate,
            crashes=args.crashes,
            hangs=args.hangs,
            slow_restarts=args.slow_restarts,
            restart_after=args.restart_after,
            deadline=args.deadline,
            p95_budget_s=args.p95_budget,
            slo=args.slo,
            sdc=args.sdc,
        )
        fleet_report = run_fleet_soak(fleet_config, trace_out=args.trace_out)
        print(fleet_report.format_report())
        return 0 if fleet_report.passed else 2
    if args.slo or args.trace_out or args.sdc:
        print("error: --slo/--trace-out/--sdc require --fleet", file=sys.stderr)
        return 2
    config = SoakConfig(
        seed=args.seed,
        n_requests=args.requests if args.requests is not None else 160,
        platforms=platforms,
        deadline=args.deadline,
        shed_policy=args.shed_policy,
        bursts=args.bursts,
        burst_len=args.burst_len,
        background_rate=args.background_rate,
        p95_budget_s=args.p95_budget,
        hedge_queue_seconds=args.hedge_queue,
        require_breaker_cycle=not args.no_breaker_check,
    )
    report = run_soak(config)
    print(report.format_report())
    return 0 if report.passed else 2


@_guarded
def _cmd_fleet_demo(args) -> int:
    """Replay a multi-tenant trace through the sharded fleet and verify it."""
    from repro.chaos import reference_output
    from repro.fleet import (
        AutoscalePolicy,
        FleetRouter,
        TenantPolicy,
        multi_tenant_trace,
        worker_storm,
    )
    from repro.serve.overload import OverloadPolicy

    platforms = tuple(p.strip() for p in args.platforms.split(",") if p.strip())
    if not platforms:
        print("error: --platforms must name at least one platform", file=sys.stderr)
        return 2
    tracer = slo = flight = registry = None
    if args.slo or args.trace_out or args.metrics_out:
        from dataclasses import replace as _replace

        from repro.obs import (
            FlightRecorder,
            MetricsRegistry,
            SLOMonitor,
            Tracer,
            default_fleet_rules,
        )

        # Private registry so repeated CLI runs start from zero counters.
        registry = MetricsRegistry()
        tracer = Tracer(seed=args.seed)
        flight = FlightRecorder(capacity=256, registry=registry).attach(tracer)
        if args.slo:
            # Size the burn-rate windows to the demo's arrival rate (the
            # long window covers ~256 arrivals, the short ~64), matching
            # the fleet soak's slow-burn alert profile.
            rules = tuple(
                _replace(
                    r,
                    short_window=64.0 / args.rate,
                    long_window=256.0 / args.rate,
                    burn_threshold=1.2,
                    clear_burn=0.6,
                )
                for r in default_fleet_rules(p95_budget_s=args.deadline or 0.05)
            )
            slo = SLOMonitor(
                rules=rules, tracer=tracer, recorder=flight, registry=registry
            )
    trace = multi_tenant_trace(args.requests, seed=args.seed, rate=args.rate)
    storm = worker_storm(
        args.seed + 1,
        workers=tuple(f"w{i}" for i in range(args.workers)),
        crashes=args.crashes,
        hangs=args.hangs,
        span=args.requests,
        restart_after=args.restart_after,
    )
    autoscale = None
    if not args.no_autoscale:
        autoscale = AutoscalePolicy(
            min_workers=max(2, args.workers // 2),
            max_workers=args.workers * 2,
        )
    router = FleetRouter(
        args.workers,
        worker_platforms=platforms,
        tenant_policy=TenantPolicy(contention_depth=24),
        overload=OverloadPolicy(
            default_deadline=args.deadline, max_queue_depth=64, breaker=None
        ),
        fault_plan=storm,
        autoscale=autoscale,
        snapshot_interval=32,
        tracer=tracer,
        registry=registry,
        slo=slo,
    )
    if len(storm):
        print("worker storm:")
        print(storm.describe())
        print()
    responses, stats = router.process(trace)
    print(stats.format_table())
    print()
    corrupt = sum(
        0 if np.array_equal(r.output, reference_output(r)) else 1 for r in responses
    )
    faulted = [w for w in router.workers.values() if w.n_crashes or w.n_hangs]
    checks = [
        (
            f"accounting: {stats.accounted}/{stats.n_requests} requests "
            "served, shed, or failed — no silent drops",
            stats.accounted == stats.n_requests,
        ),
        (
            f"bit-identity: {len(responses) - corrupt}/{len(responses)} responses "
            "match unfaulted host compute",
            corrupt == 0,
        ),
        (
            f"recovery: {len(faulted)} faulted workers all rejoined",
            all(w.up for w in faulted),
        ),
    ]
    if tracer is not None:
        from repro.errors import ConfigError
        from repro.obs import validate_trace

        traced = [t for t in tracer.trace_ids() if tracer.spans_for(t)]
        invalid = 0
        for tid in traced:
            try:
                validate_trace(tracer, tid)
            except ConfigError:
                invalid += 1
        checks.append(
            (
                f"traces: {len(traced) - invalid}/{len(traced)} span trees "
                "validated (nesting + exact leaf sums per hop)",
                invalid == 0,
            )
        )
    if slo is not None:
        print(f"SLO alert timeline ({slo.fired} fired):")
        print(slo.format_timeline())
        print()
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    passed = all(ok for _, ok in checks)
    print("fleet demo:", "all checks passed" if passed else "FAILED")
    if tracer is not None and args.trace_out:
        path = tracer.to_jsonl(args.trace_out)
        print(f"trace written to {path} ({len(tracer.spans)} spans, "
              f"{len(tracer.events)} events)")
    if registry is not None and args.metrics_out:
        from pathlib import Path

        Path(args.metrics_out).write_text(registry.render_prometheus())
        print(f"metrics written to {args.metrics_out}")
    return 0 if passed else 2


@_guarded
def _cmd_obs_report(args) -> int:
    from repro.obs import format_report, load_trace, render_report

    spans, events = load_trace(args.trace)
    print(
        format_report(
            render_report(spans, events),
            by_worker=True if args.by_worker else None,
            by_tenant=args.by_tenant,
        )
    )
    return 0


@_guarded
def _cmd_slo_report(args) -> int:
    """Critical-path attribution + alert timeline from a trace file."""
    from repro.obs import analyze, format_critical_path, load_trace

    spans, events = load_trace(args.trace)
    report = analyze(spans, events)
    print(format_critical_path(report))
    alerts = [e for e in events if e.name in ("slo.fire", "slo.clear")]
    print()
    if alerts:
        print(f"SLO alert timeline ({len(alerts)} transitions):")
        for e in alerts:
            label = f"{{{e.attrs['label']}}}" if e.attrs.get("label") else ""
            kind = e.name.removeprefix("slo.")
            detail = (
                " [forced at trace end]"
                if kind == "clear" and e.attrs.get("forced")
                else ""
            )
            print(
                f"  {e.time * 1e3:10.3f} ms  {kind:<5} "
                f"{e.attrs.get('rule', '?')}{label}{detail}"
            )
    else:
        print("SLO alert timeline: (no alerts in trace)")
    if args.min_coverage is not None and report.p95_tail_coverage < args.min_coverage:
        print(
            f"slo-report: FAILED — p95-tail attribution coverage "
            f"{report.p95_tail_coverage:.1%} below --min-coverage "
            f"{args.min_coverage:.1%}",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_autotune(args) -> int:
    from repro.core import select_cf

    data = np.load(args.input).astype(np.float32)
    result = select_cf(data, min_psnr=args.min_psnr, method=args.method)
    status = "ok" if result.satisfied else "TARGET NOT REACHABLE (best effort)"
    print(
        f"cf={result.cf} ratio={result.ratio:.2f} "
        f"psnr={result.achieved_psnr:.2f} dB nrmse={result.achieved_nrmse:.4f} [{status}]"
    )
    return 0 if result.satisfied else 1


def _cmd_inspect(args) -> int:
    from repro.accel import compile_program
    from repro.accel.report import program_report
    from repro.core import make_compressor
    from repro.errors import CompileError

    comp = make_compressor(args.resolution, method=args.method, cf=args.cf, s=args.s)
    shape = (args.batch, args.channels, args.resolution, args.resolution)
    fn = comp.compress if args.direction == "compress" else comp.decompress
    example = (
        np.zeros(shape, np.float32)
        if args.direction == "compress"
        else np.zeros(comp.compressed_shape(shape), np.float32)
    )
    try:
        prog = compile_program(fn, example, args.platform, name=f"{args.method}-{args.direction}")
    except CompileError as exc:
        print(f"compile error on {args.platform}: {exc}")
        return 1
    print(program_report(prog))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--quiet", action="store_true", help="suppress informational diagnostics"
    )
    verbosity.add_argument(
        "--verbose", action="store_true", help="enable debug-level diagnostics"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table", help="print a paper table")
    p.add_argument("number", choices=("1", "2", "3"))
    p.add_argument("--scale", default="paper", choices=("tiny", "small", "paper"))
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name", nargs="?")
    p.add_argument("--list", action="store_true")
    p.add_argument("--scale", default="tiny", choices=("tiny", "small", "paper"))
    p.add_argument("--epochs", type=int, default=0)
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("platforms", help="list accelerator simulators")
    p.set_defaults(fn=_cmd_platforms)

    p = sub.add_parser("bench", help="model one configuration")
    p.add_argument("--platform", default="ipu")
    p.add_argument("--direction", default="compress", choices=("compress", "decompress"))
    p.add_argument("--method", default="dc", choices=("dc", "ps", "sg"))
    p.add_argument("--resolution", type=int, default=256)
    p.add_argument("--batch", type=int, default=100)
    p.add_argument("--channels", type=int, default=3)
    p.add_argument("--cf", type=int, default=4)
    p.add_argument("--s", type=int, default=2)
    p.add_argument("--faults", help="fault plan JSON; runs through the resilience layer")
    p.add_argument("--max-retries", type=int, help="retry budget for transient device faults")
    p.add_argument(
        "--suite",
        action="store_true",
        help="run the seeded wall-clock micro-benchmark suite instead of the model",
    )
    p.add_argument("--out", help="write the suite report JSON here")
    p.add_argument("--baseline", help="diff the suite against this baseline JSON; exit 2 on regression")
    p.add_argument("--repeats", type=int, default=5, help="timed repetitions per case (suite mode)")
    p.add_argument("--seed", type=int, default=0, help="input seed (suite mode)")
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed normalised-median slowdown vs baseline (suite mode)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="thread-pool width for the parallel fan-out section (suite mode)",
    )
    p.add_argument(
        "--refresh",
        type=int,
        default=0,
        metavar="N",
        help="run the suite N times and write the merged envelope baseline "
        "to --out (suite mode; this is how BENCH_compressor.json is made)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("compress", help="compress a .npy file to .dcz")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--method", default="dc", choices=("dc", "ps", "sg"))
    p.add_argument("--cf", type=int, default=4)
    p.add_argument("--s", type=int, default=2)
    p.add_argument("--faults", help="fault plan JSON (payload faults corrupt the output)")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help="decompress a .dcz file to .npy")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("inspect", help="profiler-style report for one program")
    p.add_argument("--platform", default="ipu")
    p.add_argument("--direction", default="compress", choices=("compress", "decompress"))
    p.add_argument("--method", default="dc", choices=("dc", "ps", "sg"))
    p.add_argument("--resolution", type=int, default=64)
    p.add_argument("--batch", type=int, default=100)
    p.add_argument("--channels", type=int, default=3)
    p.add_argument("--cf", type=int, default=4)
    p.add_argument("--s", type=int, default=2)
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("autotune", help="pick CF for a PSNR target")
    p.add_argument("input")
    p.add_argument("--min-psnr", type=float, required=True)
    p.add_argument("--method", default="dc", choices=("dc", "ps", "sg"))
    p.set_defaults(fn=_cmd_autotune)

    p = sub.add_parser(
        "resilience-demo",
        help="scripted fault plan: retry, degradation ladder, checkpoint resume",
    )
    p.set_defaults(fn=_cmd_resilience_demo)

    p = sub.add_parser(
        "serve-demo",
        help="replay a synthetic trace through the serving layer and verify it",
    )
    p.add_argument("--requests", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--platforms", default="ipu,a100", help="comma-separated worker instances")
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--max-wait", type=float, default=0.02, help="batcher flush deadline (modelled s)")
    p.add_argument("--policy", default="least-loaded", choices=("least-loaded", "fastest-finish"))
    p.add_argument("--cache-capacity", type=int, default=64)
    p.add_argument("--min-hit-rate", type=float, default=0.9)
    p.add_argument(
        "--trace-out",
        help="attach a tracer and write every request's span tree as JSONL",
    )
    p.add_argument(
        "--metrics-out",
        help="dump the metrics registry in Prometheus text format",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request relative deadline (modelled s); enables overload control",
    )
    p.add_argument(
        "--shed-policy",
        default="shed",
        choices=("shed", "degrade"),
        help="on a predicted deadline miss: shed, or degrade to a cheaper chop factor",
    )
    p.set_defaults(fn=_cmd_serve_demo)

    p = sub.add_parser(
        "chaos-soak",
        help="seeded fault storm through the overload-hardened serving stack",
    )
    p.add_argument(
        "--requests", type=int, default=None,
        help="trace length (default 160, or 1200 with --fleet)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--platforms", default="ipu,a100", help="comma-separated worker instances")
    p.add_argument(
        "--fleet", action="store_true",
        help="soak a multi-worker fleet (worker crash storm + tenant quotas) "
        "instead of a single service",
    )
    p.add_argument("--workers", type=int, default=8, help="fleet workers (with --fleet)")
    p.add_argument("--crashes", type=int, default=2, help="workers crashed by the storm")
    p.add_argument("--hangs", type=int, default=1, help="workers hung by the storm")
    p.add_argument("--slow-restarts", type=int, default=0, help="slow-restart faults")
    p.add_argument(
        "--restart-after", type=int, default=120,
        help="ordinals before a faulted worker rejoins",
    )
    p.add_argument(
        "--rate", type=float, default=12000.0,
        help="aggregate arrival rate for the fleet trace (req/s modelled)",
    )
    p.add_argument("--deadline", type=float, default=0.05, help="per-request deadline (modelled s)")
    p.add_argument("--shed-policy", default="shed", choices=("shed", "degrade"))
    p.add_argument("--bursts", type=int, default=2, help="fault bursts in the storm")
    p.add_argument("--burst-len", type=int, default=4, help="consecutive faults per burst")
    p.add_argument(
        "--background-rate", type=float, default=0.0, help="per-event background fault rate"
    )
    p.add_argument(
        "--p95-budget", type=float, default=0.05, help="modelled p95 latency budget (s)"
    )
    p.add_argument(
        "--hedge-queue", type=float, default=None, help="hedge batches queued beyond this (modelled s)"
    )
    p.add_argument(
        "--no-breaker-check",
        action="store_true",
        help="skip the breaker open->half_open->closed cycle assertion",
    )
    p.add_argument(
        "--slo",
        action="store_true",
        help="(with --fleet) run the SLO observatory: trace propagation, "
        "burn-rate alerts, flight recorder, determinism + zero-overhead checks",
    )
    p.add_argument(
        "--trace-out",
        help="(with --fleet --slo) write the instrumented run's trace JSONL",
    )
    p.add_argument(
        "--sdc",
        action="store_true",
        help="(with --fleet) add a silent-data-corruption storm: seeded bit "
        "flips in GEMM products, device outputs and handoff snapshots, with "
        "integrity guards + worker quarantine armed; the soak fails (exit 2) "
        "on any undetected corruption",
    )
    p.set_defaults(fn=_cmd_chaos_soak)

    p = sub.add_parser(
        "fleet-demo",
        help="multi-tenant trace through the sharded fleet: crash storm, "
        "warm handoff, autoscaling",
    )
    p.add_argument("--requests", type=int, default=800)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--platforms", default="ipu,a100", help="platforms each worker leases")
    p.add_argument("--workers", type=int, default=8, help="initial fleet size")
    p.add_argument("--crashes", type=int, default=2, help="workers crashed by the storm")
    p.add_argument("--hangs", type=int, default=1, help="workers hung by the storm")
    p.add_argument(
        "--restart-after", type=int, default=100,
        help="ordinals before a faulted worker rejoins",
    )
    p.add_argument(
        "--rate", type=float, default=4000.0, help="aggregate arrival rate (req/s modelled)"
    )
    p.add_argument("--deadline", type=float, default=0.05, help="per-request deadline (modelled s)")
    p.add_argument(
        "--no-autoscale", action="store_true", help="fix the fleet at --workers"
    )
    p.add_argument(
        "--slo",
        action="store_true",
        help="attach the SLO observatory: tracer, burn-rate monitor, flight "
        "recorder; prints the alert timeline and validates every span tree",
    )
    p.add_argument(
        "--trace-out",
        help="attach a tracer and write the fleet trace (spans + events) as JSONL",
    )
    p.add_argument(
        "--metrics-out",
        help="dump the run's metrics registry in Prometheus text format",
    )
    p.set_defaults(fn=_cmd_fleet_demo)

    p = sub.add_parser(
        "obs-report",
        help="per-stage latency/byte breakdown from a serve-demo or "
        "fleet-demo trace file",
    )
    p.add_argument("trace", help="JSONL trace written by --trace-out")
    p.add_argument(
        "--by-worker",
        action="store_true",
        help="force the per-worker grouped view (auto when >1 worker appears)",
    )
    p.add_argument(
        "--by-tenant",
        action="store_true",
        help="add a per-tenant grouped view (requests, latency, stage ms)",
    )
    p.set_defaults(fn=_cmd_obs_report)

    p = sub.add_parser(
        "slo-report",
        help="critical-path attribution + SLO alert timeline from a trace file",
    )
    p.add_argument("trace", help="JSONL trace written by --trace-out")
    p.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        help="exit 2 unless p95-tail attribution coverage meets this fraction",
    )
    p.set_defaults(fn=_cmd_slo_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.quiet or args.verbose:
        from repro.obs.log import set_verbosity

        set_verbosity("quiet" if args.quiet else "verbose")
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
