"""Reproduction of "A Portable, Fast, DCT-based Compressor for AI Accelerators".

(Shah, Yu, Di, Becchi, Cappello — HPDC '24.)

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.tensor``
    NumPy-backed tensor library with reverse-mode autograd exposing the
    torch-like operator surface the paper's compressor is written against.
``repro.nn``
    Neural-network layers, losses, optimisers and the four evaluation
    architectures (ResNet34, encoder-decoder, autoencoder, UNet).
``repro.core``
    The DCT+Chop compressor and its two optimisations (partial
    serialization and scatter/gather triangle retention).
``repro.accel``
    Simulators for the four AI accelerators (Cerebras CS-2, SambaNova
    SN30, Groq GroqChip, Graphcore IPU) plus A100 GPU and host CPU:
    graph capture, compiler with static-shape/op-support/memory checks,
    and a calibrated analytical timing model.
``repro.data``
    Seeded synthetic stand-ins for the paper's four datasets.
``repro.baselines``
    ZFP-style fixed-rate compressor, JPEG quantization pipeline and a
    color quantizer used as comparators.
``repro.train``
    Training loop with the compress->decompress-per-batch hook used in
    the accuracy experiments.
``repro.harness``
    Per-figure experiment drivers that regenerate every table and figure
    in the paper's evaluation section.
``repro.faults`` / ``repro.resilience``
    Seeded fault injection and the recovery machinery around the
    simulators: retry, degradation ladder, device-loss failover.
``repro.serve``
    Serving layer over the static-shape compiled programs: compiled-plan
    cache, dynamic batching, multi-platform scheduling.
"""

from repro.version import __version__

__all__ = ["__version__"]
