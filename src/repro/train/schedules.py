"""Learning-rate schedules.

The paper trains at a fixed LR (Table 3); schedules are provided for the
extended studies (paper-scale 30-epoch runs benefit from decay).  Each
scheduler mutates ``optimizer.lr`` (our optimisers read it per step).
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base: call ``step()`` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        inner = getattr(self.optimizer, "inner", None)
        if inner is not None:
            inner.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * t / self.t_max)
        )


class WarmupLR(LRScheduler):
    """Linear ramp from ``warmup_factor * base`` to ``base`` over ``warmup`` epochs."""

    def __init__(self, optimizer: Optimizer, warmup: int, warmup_factor: float = 0.1) -> None:
        super().__init__(optimizer)
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.warmup = warmup
        self.warmup_factor = warmup_factor

    def get_lr(self) -> float:
        if self.epoch >= self.warmup:
            return self.base_lr
        alpha = self.epoch / self.warmup
        return self.base_lr * (self.warmup_factor + (1.0 - self.warmup_factor) * alpha)
