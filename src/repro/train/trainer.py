"""The training loop used by every accuracy experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import DeviceError
from repro.faults import fire_fault
from repro.nn.module import Module
from repro.obs.metrics import get_registry
from repro.nn.optim import Adam, Optimizer, SGD
from repro.tensor import Tensor, no_grad
from repro.train.checkpoint import load_checkpoint, restore_checkpoint, save_checkpoint
from repro.train.metrics import accuracy_from_logits


@dataclass
class TrainConfig:
    """Hyper-parameters (paper Table 3 style: BS + LR per benchmark)."""

    epochs: int = 30
    lr: float = 1e-3
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9

    def build_optimizer(self, model: Module) -> Optimizer:
        if self.optimizer == "adam":
            return Adam(model.parameters(), lr=self.lr)
        if self.optimizer == "sgd":
            return SGD(model.parameters(), lr=self.lr, momentum=self.momentum)
        raise ValueError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class History:
    """Per-epoch metrics; what Figs. 7/8/9/16 plot."""

    train_loss: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1]

    @property
    def final_test_loss(self) -> float:
        return self.test_loss[-1]

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1]


class Trainer:
    """Trains a model, optionally compressing every batch first.

    Parameters
    ----------
    compressor:
        Any object with a ``roundtrip(x) -> Tensor`` method (the three
        :mod:`repro.core` variants, ZFP, quantizers).  ``None`` trains the
        no-compression baseline.
    classification:
        When True, evaluation also reports top-1 accuracy (the classify
        benchmark); otherwise test loss only, as SciML-Bench specifies.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Callable,
        config: TrainConfig,
        compressor=None,
        classification: bool = False,
    ) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.config = config
        self.compressor = compressor
        self.classification = classification
        self.optimizer = config.build_optimizer(model)

    # ------------------------------------------------------------------
    def _prepare_batch(self, x: np.ndarray) -> Tensor:
        if self.compressor is None:
            return Tensor(x)
        with no_grad():
            rec = self.compressor.roundtrip(x)
        return rec if isinstance(rec, Tensor) else Tensor(np.asarray(rec))

    def train_epoch(self, loader) -> float:
        """One pass over ``loader``; returns mean batch loss."""
        self.model.train()
        steps = get_registry().counter(
            "repro_train_steps_total", help="optimizer steps taken"
        )
        losses = []
        for x, y in loader:
            fire_fault("train_step")
            batch = self._prepare_batch(x)
            self.optimizer.zero_grad()
            out = self.model(batch)
            loss = self.loss_fn(out, y)
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
            steps.inc()
        return float(np.mean(losses))

    def evaluate(self, loader) -> tuple[float, float]:
        """Mean test loss (and accuracy when classification).

        Test *inputs* pass through the same compressor as training inputs:
        the compressor sits on the host-to-device path, so at inference
        time incoming data is compressed exactly like training data.
        Targets/labels are never touched.  This matches the paper's
        observed behaviour — notably that chopping high-frequency DCT
        coefficients can *improve* em_denoise test loss (the chop itself
        denoises the input).
        """
        self.model.eval()
        losses = []
        accs = []
        with no_grad():
            for x, y in loader:
                out = self.model(self._prepare_batch(x))
                losses.append(self.loss_fn(out, y).item())
                if self.classification:
                    accs.append(accuracy_from_logits(out, y))
        return float(np.mean(losses)), float(np.mean(accs)) if accs else float("nan")

    def fit(
        self,
        train_loader,
        test_loader,
        epochs: int | None = None,
        *,
        checkpoint_path=None,
        checkpoint_every: int = 1,
        resume: bool = False,
        max_restarts: int = 2,
        recovery_log=None,
    ) -> History:
        """Train for ``epochs``, optionally fault-tolerantly.

        With ``checkpoint_path`` set, a checkpoint (model + optimizer +
        epoch + shuffle RNG state) is written after every
        ``checkpoint_every`` completed epochs, and a
        :class:`~repro.errors.DeviceError` raised mid-epoch restores the
        last checkpoint and replays that epoch instead of crashing — the
        partial epoch's updates are discarded, so a recovered run is
        bit-identical to an uninterrupted one with the same seed.
        ``resume=True`` continues from an existing checkpoint file.
        Without ``checkpoint_path`` the behaviour is unchanged.
        """
        total = epochs if epochs is not None else self.config.epochs
        path = Path(checkpoint_path) if checkpoint_path is not None else None
        loader_gen = getattr(train_loader, "gen", None)
        history = History()
        epoch = 0

        if path is not None:
            if resume and path.exists():
                epoch, history = self._restore(path, loader_gen, recovery_log)
            else:
                # Epoch-0 baseline so a fault in the very first epoch can
                # roll back to the initial state.
                self._checkpoint(path, 0, history, loader_gen, recovery_log)

        restarts = 0
        while epoch < total:
            try:
                train_loss = self.train_epoch(train_loader)
            except DeviceError as exc:
                if path is None or restarts >= max_restarts:
                    raise
                restarts += 1
                if recovery_log is not None:
                    recovery_log.record(
                        "fault",
                        f"device fault in epoch {epoch}: {exc}",
                        kind=type(exc).__name__,
                        epoch=epoch,
                    )
                epoch, history = self._restore(path, loader_gen, recovery_log)
                continue
            history.train_loss.append(train_loss)
            test_loss, test_acc = self.evaluate(test_loader)
            history.test_loss.append(test_loss)
            history.test_accuracy.append(test_acc)
            epoch += 1
            get_registry().counter(
                "repro_train_epochs_total", help="completed training epochs"
            ).inc()
            if path is not None and (epoch % checkpoint_every == 0 or epoch == total):
                self._checkpoint(path, epoch, history, loader_gen, recovery_log)
        return history

    # ------------------------------------------------------------------
    def _checkpoint(self, path: Path, epoch: int, history: History, loader_gen, log) -> None:
        save_checkpoint(
            path,
            epoch=epoch,
            model=self.model,
            optimizer=self.optimizer,
            history=history,
            loader_gen=loader_gen,
        )
        if log is not None:
            log.record("checkpoint", f"saved after {epoch} epoch(s)", epoch=epoch)

    def _restore(self, path: Path, loader_gen, log) -> tuple[int, History]:
        payload = load_checkpoint(path)
        epoch, hist = restore_checkpoint(
            payload, model=self.model, optimizer=self.optimizer, loader_gen=loader_gen
        )
        history = History(
            train_loss=list(hist["train_loss"]),
            test_loss=list(hist["test_loss"]),
            test_accuracy=list(hist["test_accuracy"]),
        )
        if log is not None:
            log.record("restore", f"resumed from epoch {epoch}", epoch=epoch)
        return epoch, history
