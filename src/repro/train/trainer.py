"""The training loop used by every accuracy experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer, SGD
from repro.tensor import Tensor, no_grad
from repro.train.metrics import accuracy_from_logits


@dataclass
class TrainConfig:
    """Hyper-parameters (paper Table 3 style: BS + LR per benchmark)."""

    epochs: int = 30
    lr: float = 1e-3
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9

    def build_optimizer(self, model: Module) -> Optimizer:
        if self.optimizer == "adam":
            return Adam(model.parameters(), lr=self.lr)
        if self.optimizer == "sgd":
            return SGD(model.parameters(), lr=self.lr, momentum=self.momentum)
        raise ValueError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class History:
    """Per-epoch metrics; what Figs. 7/8/9/16 plot."""

    train_loss: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1]

    @property
    def final_test_loss(self) -> float:
        return self.test_loss[-1]

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1]


class Trainer:
    """Trains a model, optionally compressing every batch first.

    Parameters
    ----------
    compressor:
        Any object with a ``roundtrip(x) -> Tensor`` method (the three
        :mod:`repro.core` variants, ZFP, quantizers).  ``None`` trains the
        no-compression baseline.
    classification:
        When True, evaluation also reports top-1 accuracy (the classify
        benchmark); otherwise test loss only, as SciML-Bench specifies.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Callable,
        config: TrainConfig,
        compressor=None,
        classification: bool = False,
    ) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.config = config
        self.compressor = compressor
        self.classification = classification
        self.optimizer = config.build_optimizer(model)

    # ------------------------------------------------------------------
    def _prepare_batch(self, x: np.ndarray) -> Tensor:
        if self.compressor is None:
            return Tensor(x)
        with no_grad():
            rec = self.compressor.roundtrip(x)
        return rec if isinstance(rec, Tensor) else Tensor(np.asarray(rec))

    def train_epoch(self, loader) -> float:
        """One pass over ``loader``; returns mean batch loss."""
        self.model.train()
        losses = []
        for x, y in loader:
            batch = self._prepare_batch(x)
            self.optimizer.zero_grad()
            out = self.model(batch)
            loss = self.loss_fn(out, y)
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses))

    def evaluate(self, loader) -> tuple[float, float]:
        """Mean test loss (and accuracy when classification).

        Test *inputs* pass through the same compressor as training inputs:
        the compressor sits on the host-to-device path, so at inference
        time incoming data is compressed exactly like training data.
        Targets/labels are never touched.  This matches the paper's
        observed behaviour — notably that chopping high-frequency DCT
        coefficients can *improve* em_denoise test loss (the chop itself
        denoises the input).
        """
        self.model.eval()
        losses = []
        accs = []
        with no_grad():
            for x, y in loader:
                out = self.model(self._prepare_batch(x))
                losses.append(self.loss_fn(out, y).item())
                if self.classification:
                    accs.append(accuracy_from_logits(out, y))
        return float(np.mean(losses)), float(np.mean(accs)) if accs else float("nan")

    def fit(self, train_loader, test_loader, epochs: int | None = None) -> History:
        history = History()
        for _ in range(epochs if epochs is not None else self.config.epochs):
            history.train_loss.append(self.train_epoch(train_loader))
            test_loss, test_acc = self.evaluate(test_loader)
            history.test_loss.append(test_loss)
            history.test_accuracy.append(test_acc)
        return history
