"""Training loop with the paper's compression-in-the-loop hook.

During the accuracy experiments "each batch is first compressed and then
decompressed" (Section 4.2.1) before being fed to the model, so the model
trains on reconstructed data at a known compression ratio.
"""

from repro.train.trainer import Trainer, TrainConfig, History
from repro.train.checkpoint import save_checkpoint, load_checkpoint, restore_checkpoint
from repro.train.metrics import accuracy_from_logits, percent_difference
from repro.train.schedules import LRScheduler, StepLR, CosineAnnealingLR, WarmupLR

__all__ = [
    "Trainer",
    "TrainConfig",
    "History",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
    "accuracy_from_logits",
    "percent_difference",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
]
