"""Training checkpoints: model + optimizer + epoch + RNG state.

A checkpoint captures everything needed to make a resumed run *bit-identical*
to an uninterrupted one with the same seed:

* model parameters and buffers (``Module.state_dict``),
* optimizer slot state (Adam moments / SGD velocity and step count),
* completed-epoch counter and the metric history so far,
* the data loader's shuffle RNG and the global default generator.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save never
leaves a half-written checkpoint — the previous one survives.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.tensor.random import Generator, default_generator

CHECKPOINT_VERSION = 1


def _capture_rng(gen: Generator | None) -> dict:
    states = {"default": default_generator.rng.bit_generator.state}
    if gen is not None:
        states["loader"] = gen.rng.bit_generator.state
    return states


def _restore_rng(states: dict, gen: Generator | None) -> None:
    default_generator.rng.bit_generator.state = states["default"]
    if gen is not None and "loader" in states:
        gen.rng.bit_generator.state = states["loader"]


def save_checkpoint(
    path,
    *,
    epoch: int,
    model,
    optimizer,
    history,
    loader_gen: Generator | None = None,
) -> Path:
    """Atomically write a checkpoint for ``epoch`` completed epochs."""
    path = Path(path)
    payload = {
        "version": CHECKPOINT_VERSION,
        "epoch": epoch,
        "model": model.state_dict(),
        "optimizer": optimizer.state_dict(),
        "history": {
            "train_loss": list(history.train_loss),
            "test_loss": list(history.test_loss),
            "test_accuracy": list(history.test_accuracy),
        },
        "rng": _capture_rng(loader_gen),
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh)
    os.replace(tmp, path)
    return path


def load_checkpoint(path) -> dict:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with open(Path(path), "rb") as fh:
        payload = pickle.load(fh)
    if payload.get("version") != CHECKPOINT_VERSION:
        raise ValueError(f"unsupported checkpoint version {payload.get('version')!r}")
    return payload


def restore_checkpoint(payload: dict, *, model, optimizer, loader_gen: Generator | None = None):
    """Apply a loaded checkpoint; returns (completed epochs, history lists)."""
    model.load_state_dict(payload["model"])
    optimizer.load_state_dict(payload["optimizer"])
    _restore_rng(payload["rng"], loader_gen)
    return payload["epoch"], payload["history"]
