"""Training/evaluation metric helpers."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def accuracy_from_logits(logits, labels) -> float:
    """Top-1 accuracy for integer labels."""
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels.data if isinstance(labels, Tensor) else labels)
    return float((arr.argmax(axis=-1) == labels).mean())


def percent_difference(value: float, baseline: float) -> float:
    """Percent difference from a no-compression baseline (Fig. 8's y-axis).

    ``100 * (value - baseline) / |baseline|``; for losses lower is better,
    for accuracy higher is better.
    """
    if baseline == 0:
        return 0.0 if value == 0 else float("inf") if value > 0 else float("-inf")
    return 100.0 * (value - baseline) / abs(baseline)
