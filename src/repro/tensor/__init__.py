"""NumPy-backed tensor library with reverse-mode autograd.

This package is the stand-in for the PyTorch operator surface the paper's
compressor is implemented against.  The public names intentionally mirror
``torch``: :func:`matmul`, :func:`gather`, :func:`scatter`, etc., so the
compressor code in :mod:`repro.core` reads exactly like the paper's
listings (``Y = matmul(LHS, matmul(A, RHS))``).

Only the ops actually needed by the compressor, the four evaluation
networks, and the baselines are provided; each op has a NumPy forward and
a NumPy backward, and the hot paths are fully vectorised (no Python loops
over elements).
"""

from repro.tensor.tensor import (
    Tensor,
    Function,
    no_grad,
    is_grad_enabled,
    tensor,
    zeros,
    zeros_like,
    ones,
    ones_like,
    full,
    arange,
    eye,
    stack,
    concatenate,
    where,
    maximum,
    minimum,
    matmul,
    exp,
    log,
    sqrt,
    tanh,
    sigmoid,
    relu,
    abs,  # noqa: A004 - mirrors torch.abs
    clip,
)
from repro.tensor.gather_scatter import gather, scatter, take_along_axis
from repro.tensor import functional
from repro.tensor.random import Generator, default_generator, manual_seed, randn, rand, randint

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "full",
    "arange",
    "eye",
    "stack",
    "concatenate",
    "where",
    "maximum",
    "minimum",
    "matmul",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "abs",
    "clip",
    "gather",
    "scatter",
    "take_along_axis",
    "functional",
    "Generator",
    "default_generator",
    "manual_seed",
    "randn",
    "rand",
    "randint",
]
