"""``gather``/``scatter`` operators (the IPU-only ops of Section 3.5.2).

These mirror ``torch.gather`` and ``torch.Tensor.scatter``:

* ``gather(input, dim, index)`` — output has the shape of ``index``;
  ``out[..., j, ...] = input[..., index[..., j, ...], ...]`` along ``dim``.
* ``scatter(dim, index, src, size)`` — inverse placement: a zero tensor of
  ``src``'s shape with ``size`` along ``dim`` receives ``src`` values at
  ``index``.

Both are differentiable with respect to the data operand (``input`` /
``src``); indices are integer tensors and carry no gradient.  The paper's
SG compressor uses ``gather`` after DCT+Chop compression to keep only the
upper-left triangle, and ``scatter`` before decompression to restore the
retained values to their original positions (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Function, Tensor


def _index_array(index) -> np.ndarray:
    arr = index.data if isinstance(index, Tensor) else np.asarray(index)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ShapeError(f"gather/scatter index must be integer, got {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def _along_axis_indices(index: np.ndarray, dim: int) -> tuple:
    """Build an advanced-indexing tuple selecting ``index`` along ``dim``."""
    idx = []
    for ax in range(index.ndim):
        if ax == dim:
            idx.append(index)
        else:
            shape = [1] * index.ndim
            shape[ax] = index.shape[ax]
            idx.append(np.arange(index.shape[ax]).reshape(shape))
    return tuple(idx)


class Gather(Function):
    def forward(self, a, *, dim, index):
        if index.ndim != a.ndim:
            raise ShapeError(
                f"gather index ndim {index.ndim} must match input ndim {a.ndim}"
            )
        self.save(a.shape, dim, index)
        return np.take_along_axis(a, index, axis=dim)

    def backward(self, grad):
        shape, dim, index = self.saved
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, _along_axis_indices(index, dim), grad)
        return (out,)


class Scatter(Function):
    def forward(self, src, *, dim, index, size):
        if index.shape != src.shape:
            raise ShapeError(
                f"scatter index shape {index.shape} must match src shape {src.shape}"
            )
        out_shape = list(src.shape)
        out_shape[dim] = size
        self.save(dim, index)
        out = np.zeros(tuple(out_shape), dtype=src.dtype)
        np.put_along_axis(out, index, src, axis=dim)
        return out

    def backward(self, grad):
        dim, index = self.saved
        return (np.take_along_axis(grad, index, axis=dim),)


def gather(input: Tensor, dim: int, index) -> Tensor:
    """Collect values along ``dim`` at ``index`` (mirrors ``torch.gather``)."""
    return Gather.apply(input, dim=dim % input.ndim, index=_index_array(index))


def scatter(src: Tensor, dim: int, index, size: int) -> Tensor:
    """Place ``src`` values into a zero tensor of extent ``size`` along ``dim``.

    Equivalent to ``torch.zeros(...).scatter_(dim, index, src)`` with the
    destination sized ``size`` along ``dim`` and ``src.shape`` elsewhere.
    """
    src_t = src if isinstance(src, Tensor) else Tensor(src)
    return Scatter.apply(src_t, dim=dim % src_t.ndim, index=_index_array(index), size=int(size))


def take_along_axis(input: Tensor, index, dim: int) -> Tensor:
    """NumPy-named alias of :func:`gather`."""
    return gather(input, dim, index)
