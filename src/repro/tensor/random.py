"""Seeded randomness helpers.

All stochastic code in the repo (data synthesis, weight init, shuffling)
draws from a :class:`Generator` so every experiment is reproducible from a
single seed.  ``manual_seed`` mirrors ``torch.manual_seed`` for the global
default generator.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import DEFAULT_DTYPE, Tensor


class Generator:
    """Thin wrapper over ``numpy.random.Generator`` producing Tensors."""

    def __init__(self, seed: int | None = None) -> None:
        self.seed(seed)

    def seed(self, seed: int | None) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def randn(self, *shape, dtype=DEFAULT_DTYPE, requires_grad: bool = False) -> Tensor:
        return Tensor(
            self._rng.standard_normal(shape).astype(dtype), requires_grad=requires_grad
        )

    def rand(self, *shape, dtype=DEFAULT_DTYPE, requires_grad: bool = False) -> Tensor:
        return Tensor(self._rng.random(shape).astype(dtype), requires_grad=requires_grad)

    def randint(self, low: int, high: int, shape) -> np.ndarray:
        return self._rng.integers(low, high, size=shape)

    def permutation(self, n: int) -> np.ndarray:
        return self._rng.permutation(n)

    def spawn(self) -> "Generator":
        """Derive an independent child generator (for parallel workloads)."""
        return Generator(int(self._rng.integers(0, 2**31 - 1)))


default_generator = Generator(0)


def manual_seed(seed: int) -> None:
    """Reseed the global default generator."""
    default_generator.seed(seed)


def randn(*shape, requires_grad: bool = False) -> Tensor:
    return default_generator.randn(*shape, requires_grad=requires_grad)


def rand(*shape, requires_grad: bool = False) -> Tensor:
    return default_generator.rand(*shape, requires_grad=requires_grad)


def randint(low: int, high: int, shape) -> np.ndarray:
    return default_generator.randint(low, high, shape)
