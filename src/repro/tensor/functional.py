"""NN-oriented operators: convolution, pooling, padding, upsampling, softmax.

Convolutions use the im2col formulation so the inner loop is a single
large ``matmul`` — the same "everything is a matrix multiply" principle
the paper's compressor exploits on the accelerators.  ``col2im`` (the
backward-data pass) is vectorised with a precomputed advanced-indexing
pattern and one ``np.add.at`` scatter-add.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Function, Tensor


# ----------------------------------------------------------------------
# im2col helpers
# ----------------------------------------------------------------------
def _im2col_indices(
    c: int, kh: int, kw: int, out_h: int, out_w: int, stride: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays mapping (C*KH*KW, L) column entries to padded-image pixels."""
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int):
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(f"conv output size would be non-positive for input {x.shape}")
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    k, i, j = _im2col_indices(c, kh, kw, out_h, out_w, stride)
    cols = x[:, k, i, j]  # (N, C*KH*KW, L)
    return cols, (k, i, j), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    idx: tuple[np.ndarray, np.ndarray, np.ndarray],
    padding: int,
) -> np.ndarray:
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    k, i, j = idx
    np.add.at(out, (slice(None), k, i, j), cols)
    if padding > 0:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


class Conv2dFn(Function):
    def forward(self, x, weight, bias=None, *, stride, padding):
        if x.ndim != 4 or weight.ndim != 4:
            raise ShapeError("conv2d expects 4-D input (N,C,H,W) and weight (F,C,KH,KW)")
        f, c, kh, kw = weight.shape
        if x.shape[1] != c:
            raise ShapeError(f"conv2d channel mismatch: input {x.shape[1]} vs weight {c}")
        cols, idx, out_h, out_w = _im2col(x, kh, kw, stride, padding)
        w2 = weight.reshape(f, -1)
        out = np.matmul(w2, cols)  # (N, F, L)
        if bias is not None:
            out = out + bias.reshape(1, -1, 1)
        self.save(cols, idx, x.shape, weight, bias is not None, stride, padding)
        return out.reshape(x.shape[0], f, out_h, out_w)

    def backward(self, grad):
        cols, idx, x_shape, weight, has_bias, stride, padding = self.saved
        n, f = grad.shape[0], grad.shape[1]
        g2 = grad.reshape(n, f, -1)  # (N, F, L)
        gw = np.einsum("nfl,nkl->fk", g2, cols, optimize=True).reshape(weight.shape)
        gcols = np.matmul(weight.reshape(f, -1).T, g2)  # (N, K, L)
        gx = _col2im(gcols, x_shape, idx, padding)
        gb = g2.sum(axis=(0, 2)) if has_bias else None
        return gx, gw, gb


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation (torch semantics)."""
    if bias is None:
        return Conv2dFn.apply(x, weight, stride=int(stride), padding=int(padding))
    return Conv2dFn.apply(x, weight, bias, stride=int(stride), padding=int(padding))


class Dilate2d(Function):
    """Insert ``stride - 1`` zeros between spatial elements (for conv-transpose)."""

    def forward(self, x, *, stride, extra):
        n, c, h, w = x.shape
        out = np.zeros(
            (n, c, (h - 1) * stride + 1 + extra, (w - 1) * stride + 1 + extra),
            dtype=x.dtype,
        )
        out[:, :, : (h - 1) * stride + 1 : stride, : (w - 1) * stride + 1 : stride] = x
        self.save(stride, h, w)
        return out

    def backward(self, grad):
        stride, h, w = self.saved
        return (
            grad[:, :, : (h - 1) * stride + 1 : stride, : (w - 1) * stride + 1 : stride],
        )


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    output_padding: int = 0,
) -> Tensor:
    """2-D transposed convolution; ``weight`` is (C_in, C_out, KH, KW)."""
    c_in, c_out, kh, kw = weight.shape
    if kh != kw:
        raise ShapeError("conv_transpose2d supports square kernels only")
    dilated = Dilate2d.apply(x, stride=int(stride), extra=int(output_padding))
    # Flip kernel spatially and swap channel roles: transposed conv is the
    # backward-data pass of a regular conv.
    w_flipped = weight.transpose(1, 0, 2, 3)[:, :, ::-1, ::-1]
    return conv2d(dilated, w_flipped, bias, stride=1, padding=kh - 1 - int(padding))


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
class MaxPool2dFn(Function):
    def forward(self, x, *, kernel, stride):
        n, c, h, w = x.shape
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
        windows = windows[:, :, ::stride, ::stride]  # (N,C,OH,OW,K,K)
        flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        self.save(x.shape, arg, kernel, stride)
        return out

    def backward(self, grad):
        x_shape, arg, kernel, stride = self.saved
        n, c, h, w = x_shape
        out_h, out_w = arg.shape[2], arg.shape[3]
        gx = np.zeros(x_shape, dtype=grad.dtype)
        kh = arg // kernel
        kw = arg % kernel
        oh = np.arange(out_h).reshape(1, 1, -1, 1)
        ow = np.arange(out_w).reshape(1, 1, 1, -1)
        rows = oh * stride + kh
        cols = ow * stride + kw
        nn = np.arange(n).reshape(-1, 1, 1, 1)
        cc = np.arange(c).reshape(1, -1, 1, 1)
        np.add.at(gx, (nn, cc, rows, cols), grad)
        return (gx,)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    return MaxPool2dFn.apply(x, kernel=int(kernel), stride=int(stride or kernel))


class AvgPool2dFn(Function):
    def forward(self, x, *, kernel, stride):
        windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
        windows = windows[:, :, ::stride, ::stride]
        self.save(x.shape, kernel, stride)
        return windows.mean(axis=(-1, -2))

    def backward(self, grad):
        x_shape, kernel, stride = self.saved
        gx = np.zeros(x_shape, dtype=grad.dtype)
        g = grad / (kernel * kernel)
        if stride == kernel:
            # Non-overlapping fast path: each input pixel belongs to one window.
            gx_view = gx[
                :, :, : grad.shape[2] * kernel, : grad.shape[3] * kernel
            ].reshape(gx.shape[0], gx.shape[1], grad.shape[2], kernel, grad.shape[3], kernel)
            gx_view += g[:, :, :, None, :, None]
        else:
            out_h, out_w = grad.shape[2], grad.shape[3]
            for kh in range(kernel):
                for kw in range(kernel):
                    gx[
                        :,
                        :,
                        kh : kh + out_h * stride : stride,
                        kw : kw + out_w * stride : stride,
                    ] += g
        return (gx,)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    return AvgPool2dFn.apply(x, kernel=int(kernel), stride=int(stride or kernel))


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global average pooling when ``output_size == 1`` (the ResNet head case)."""
    if output_size != 1:
        raise ShapeError("adaptive_avg_pool2d only supports output_size=1")
    return x.mean(axis=(2, 3), keepdims=True)


# ----------------------------------------------------------------------
# Padding / upsampling
# ----------------------------------------------------------------------
class Pad2d(Function):
    def forward(self, x, *, pad):
        left, right, top, bottom = pad
        self.save(pad, x.shape)
        return np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)))

    def backward(self, grad):
        (left, right, top, bottom), shape = self.saved
        h, w = shape[2], shape[3]
        return (grad[:, :, top : top + h, left : left + w],)


def pad2d(x: Tensor, pad: tuple[int, int, int, int]) -> Tensor:
    """Zero-pad a NCHW tensor; ``pad`` is (left, right, top, bottom)."""
    return Pad2d.apply(x, pad=tuple(int(p) for p in pad))


class UpsampleNearest(Function):
    def forward(self, x, *, scale):
        self.save(scale)
        return x.repeat(scale, axis=2).repeat(scale, axis=3)

    def backward(self, grad):
        (scale,) = self.saved
        n, c, h, w = grad.shape
        return (
            grad.reshape(n, c, h // scale, scale, w // scale, scale).sum(axis=(3, 5)),
        )


def upsample_nearest(x: Tensor, scale: int = 2) -> Tensor:
    return UpsampleNearest.apply(x, scale=int(scale))


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax built from primitives."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> Tensor:
    """Non-differentiable one-hot encoding of integer labels."""
    labels = np.asarray(labels)
    out = np.zeros((labels.size, num_classes), dtype=np.float32)
    out[np.arange(labels.size), labels.reshape(-1)] = 1.0
    return Tensor(out.reshape(*labels.shape, num_classes))


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ W^T + b`` (torch.nn.functional.linear semantics)."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out
