"""Core ``Tensor`` type, autograd tape, and primitive operators.

Implementation notes
--------------------
* Reverse-mode autograd over a dynamically-built DAG.  Every differentiable
  op is a :class:`Function`; ``Function.apply`` records the node when grad
  mode is on and any input requires grad.
* Gradients are plain ``numpy.ndarray``s accumulated into ``Tensor.grad``.
* Broadcasting is supported everywhere NumPy supports it; backward passes
  reduce gradients back to the parent shape with :func:`_unbroadcast`.
* Default dtype is ``float32`` — the paper uses FP32 on every platform for
  portability (Section 3.1, "Arithmetic Precision Support").
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ShapeError

DEFAULT_DTYPE = np.float32

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether autograd recording is currently enabled."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd recording (like ``torch.no_grad``)."""
    prev = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape produced by broadcasting) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Any, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype == np.float64:
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


class Function:
    """Base class for differentiable operations.

    Subclasses implement ``forward(*arrays, **kwargs) -> np.ndarray`` and
    ``backward(grad) -> tuple`` returning one gradient (or ``None``) per
    tensor input, in order.
    """

    __slots__ = ("parents", "saved", "kwargs")

    def __init__(self) -> None:
        self.parents: tuple[Tensor, ...] = ()
        self.saved: tuple = ()
        self.kwargs: dict = {}

    def save(self, *items) -> None:
        self.saved = items

    def forward(self, *arrays: np.ndarray, **kwargs) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def apply(cls, *inputs, **kwargs) -> "Tensor":
        ctx = cls()
        ctx.kwargs = kwargs
        tensors = [x if isinstance(x, Tensor) else Tensor(x) for x in inputs]
        arrays = [t.data for t in tensors]
        out_data = ctx.forward(*arrays, **kwargs)
        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            ctx.parents = tuple(tensors)
            out._ctx = ctx
        return out


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autograd."""

    __slots__ = ("data", "requires_grad", "grad", "_ctx")

    def __init__(self, data: Any, requires_grad: bool = False, dtype=None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        elif arr.dtype == np.float64:
            # Keep the library FP32 by default, matching the paper's setup.
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._ctx: Function | None = None

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numel(self) -> int:
        return self.data.size

    def item(self) -> float:
        return self.data.item()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view; do not mutate in graphs)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        return Identity.apply(self)

    def astype(self, dtype) -> "Tensor":
        out = Tensor.__new__(Tensor)
        out.data = self.data.astype(dtype)
        out.requires_grad = False
        out.grad = None
        out._ctx = None
        return out

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_part})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autograd
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (scalar outputs get gradient 1.0).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            if node._ctx is not None:
                for parent in node._ctx.parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._ctx is None:
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            parent_grads = node._ctx.backward(node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for parent, pgrad in zip(node._ctx.parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad, dtype=parent.data.dtype)
                if parent._ctx is None:
                    # Leaf: accumulate into .grad
                    if parent.grad is None:
                        parent.grad = pgrad.copy()
                    else:
                        parent.grad = parent.grad + pgrad
                else:
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + pgrad
                    else:
                        grads[key] = pgrad

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other):
        return Add.apply(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        return Sub.apply(self, other)

    def __rsub__(self, other):
        return Sub.apply(other, self)

    def __mul__(self, other):
        return Mul.apply(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return Div.apply(self, other)

    def __rtruediv__(self, other):
        return Div.apply(other, self)

    def __neg__(self):
        return Neg.apply(self)

    def __pow__(self, exponent):
        return Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other):
        return MatMul.apply(self, other)

    # Comparison operators return non-differentiable tensors.
    def __gt__(self, other):
        return Tensor(self.data > _as_array(other))

    def __lt__(self, other):
        return Tensor(self.data < _as_array(other))

    def __ge__(self, other):
        return Tensor(self.data >= _as_array(other))

    def __le__(self, other):
        return Tensor(self.data <= _as_array(other))

    def __getitem__(self, index):
        return GetItem.apply(self, index=index)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape=shape)

    def view(self, *shape) -> "Tensor":
        return self.reshape(*shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return Transpose.apply(self, axes=axes)

    def permute(self, *axes) -> "Tensor":
        return self.transpose(*axes)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        if axis is None:
            shape = tuple(s for s in self.shape if s != 1)
        else:
            if self.shape[axis] != 1:
                raise ShapeError(f"cannot squeeze axis {axis} with size {self.shape[axis]}")
            shape = self.shape[:axis] + self.shape[axis + 1 :]
        return self.reshape(*shape) if shape else self.reshape(1).reshape(())

    def unsqueeze(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        if axis < 0:
            axis += self.ndim + 1
        shape.insert(axis, 1)
        return self.reshape(*shape)

    def broadcast_to(self, shape: Sequence[int]) -> "Tensor":
        return BroadcastTo.apply(self, shape=tuple(shape))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Max.apply(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Neg.apply(Max.apply(Neg.apply(self), axis=axis, keepdims=keepdims))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    # ------------------------------------------------------------------
    # Elementwise helpers (methods mirroring module-level functions)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return Exp.apply(self)

    def log(self) -> "Tensor":
        return Log.apply(self)

    def sqrt(self) -> "Tensor":
        return Sqrt.apply(self)

    def tanh(self) -> "Tensor":
        return Tanh.apply(self)

    def sigmoid(self) -> "Tensor":
        return Sigmoid.apply(self)

    def relu(self) -> "Tensor":
        return ReLU.apply(self)

    def abs(self) -> "Tensor":
        return Abs.apply(self)

    def clip(self, lo: float, hi: float) -> "Tensor":
        return Clip.apply(self, lo=float(lo), hi=float(hi))

    def matmul(self, other) -> "Tensor":
        return MatMul.apply(self, other)


# ----------------------------------------------------------------------
# Primitive Function implementations
# ----------------------------------------------------------------------
class Identity(Function):
    def forward(self, x):
        return x.copy()

    def backward(self, grad):
        return (grad,)


class Add(Function):
    def forward(self, a, b):
        self.save(a.shape, b.shape)
        return a + b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(grad, b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.save(a.shape, b.shape)
        return a - b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(-grad, b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.save(a, b)
        return a * b

    def backward(self, grad):
        a, b = self.saved
        return _unbroadcast(grad * b, a.shape), _unbroadcast(grad * a, b.shape)


class Div(Function):
    def forward(self, a, b):
        self.save(a, b)
        return a / b

    def backward(self, grad):
        a, b = self.saved
        ga = _unbroadcast(grad / b, a.shape)
        gb = _unbroadcast(-grad * a / (b * b), b.shape)
        return ga, gb


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    def forward(self, a, *, exponent):
        self.save(a, exponent)
        return a**exponent

    def backward(self, grad):
        a, exponent = self.saved
        return (grad * exponent * a ** (exponent - 1.0),)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    def forward(self, a):
        self.save(a)
        return np.log(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad / a,)


class Sqrt(Function):
    def forward(self, a):
        out = np.sqrt(a)
        self.save(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad / (2.0 * out),)


class Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * (1.0 - out * out),)


class Sigmoid(Function):
    def forward(self, a):
        out = 1.0 / (1.0 + np.exp(-a))
        self.save(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


class ReLU(Function):
    def forward(self, a):
        mask = a > 0
        self.save(mask)
        return a * mask

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


class Abs(Function):
    def forward(self, a):
        self.save(np.sign(a))
        return np.abs(a)

    def backward(self, grad):
        (sign,) = self.saved
        return (grad * sign,)


class Clip(Function):
    def forward(self, a, *, lo, hi):
        mask = (a >= lo) & (a <= hi)
        self.save(mask)
        return np.clip(a, lo, hi)

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


class Maximum(Function):
    def forward(self, a, b):
        amask = a >= b
        self.save(amask, a.shape, b.shape)
        return np.maximum(a, b)

    def backward(self, grad):
        amask, a_shape, b_shape = self.saved
        return (
            _unbroadcast(grad * amask, a_shape),
            _unbroadcast(grad * (~amask), b_shape),
        )


class Minimum(Function):
    def forward(self, a, b):
        amask = a <= b
        self.save(amask, a.shape, b.shape)
        return np.minimum(a, b)

    def backward(self, grad):
        amask, a_shape, b_shape = self.saved
        return (
            _unbroadcast(grad * amask, a_shape),
            _unbroadcast(grad * (~amask), b_shape),
        )


class Where(Function):
    def forward(self, cond, a, b):
        self.save(cond.astype(bool), a.shape, b.shape)
        return np.where(cond.astype(bool), a, b)

    def backward(self, grad):
        cond, a_shape, b_shape = self.saved
        return (
            None,
            _unbroadcast(np.where(cond, grad, 0.0), a_shape),
            _unbroadcast(np.where(cond, 0.0, grad), b_shape),
        )


class MatMul(Function):
    """Batched matrix multiply with NumPy broadcasting semantics."""

    def forward(self, a, b):
        if a.ndim == 0 or b.ndim == 0:
            raise ShapeError("matmul requires tensors with ndim >= 1")
        self.save(a, b)
        return np.matmul(a, b)

    def backward(self, grad):
        a, b = self.saved
        if a.ndim == 1 and b.ndim == 1:
            return grad * b, grad * a
        if a.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            ga = (np.expand_dims(grad, -2) @ np.swapaxes(b, -1, -2)).sum(
                axis=tuple(range(b.ndim - 2))
            )
            gb = np.expand_dims(a, -1) @ np.expand_dims(grad, -2)
            return ga.reshape(a.shape), _unbroadcast(gb, b.shape)
        if b.ndim == 1:
            ga = np.expand_dims(grad, -1) @ np.expand_dims(b, -2)
            gb = (np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1)).squeeze(-1)
            gb = gb.sum(axis=tuple(range(gb.ndim - 1))) if gb.ndim > 1 else gb
            return _unbroadcast(ga, a.shape), gb.reshape(b.shape)
        ga = np.matmul(grad, np.swapaxes(b, -1, -2))
        gb = np.matmul(np.swapaxes(a, -1, -2), grad)
        return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)


class Transpose(Function):
    def forward(self, a, *, axes):
        self.save(axes)
        return np.transpose(a, axes)

    def backward(self, grad):
        (axes,) = self.saved
        inverse = np.argsort(axes)
        return (np.transpose(grad, inverse),)


class Reshape(Function):
    def forward(self, a, *, shape):
        self.save(a.shape)
        return a.reshape(shape)

    def backward(self, grad):
        (shape,) = self.saved
        return (grad.reshape(shape),)


class BroadcastTo(Function):
    def forward(self, a, *, shape):
        self.save(a.shape)
        return np.broadcast_to(a, shape).copy()

    def backward(self, grad):
        (shape,) = self.saved
        return (_unbroadcast(grad, shape),)


class GetItem(Function):
    def forward(self, a, *, index):
        self.save(a.shape, index)
        return a[index]

    def backward(self, grad):
        shape, index = self.saved
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, index, grad)
        return (out,)


class Sum(Function):
    def forward(self, a, *, axis, keepdims):
        self.save(a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad):
        shape, axis, keepdims = self.saved
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % len(shape) for ax in axes)
            for ax in sorted(axes):
                grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad, shape).copy(),)


class Mean(Function):
    def forward(self, a, *, axis, keepdims):
        self.save(a.shape, axis, keepdims, a.size)
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad):
        shape, axis, keepdims, size = self.saved
        if axis is None:
            count = size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= shape[ax % len(shape)]
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % len(shape) for ax in axes)
            for ax in sorted(axes):
                grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad / count, shape).copy(),)


class Max(Function):
    def forward(self, a, *, axis, keepdims):
        out = a.max(axis=axis, keepdims=True)
        mask = a == out
        # Split gradient across ties, matching a subgradient choice that keeps
        # grad-check stable.
        counts = mask.sum(axis=axis, keepdims=True)
        self.save(mask, counts, axis, keepdims)
        return out if keepdims else np.squeeze(out, axis=axis) if axis is not None else out.reshape(())

    def backward(self, grad):
        mask, counts, axis, keepdims = self.saved
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % mask.ndim for ax in axes)
            for ax in sorted(axes):
                grad = np.expand_dims(grad, ax)
        elif axis is None:
            grad = np.broadcast_to(grad, mask.shape)
        return (mask * grad / counts,)


class Concat(Function):
    def forward(self, *arrays, axis):
        self.save(axis, [a.shape[axis] for a in arrays])
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad):
        axis, sizes = self.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad, splits, axis=axis))


class Stack(Function):
    def forward(self, *arrays, axis):
        self.save(axis)
        return np.stack(arrays, axis=axis)

    def backward(self, grad):
        (axis,) = self.saved
        pieces = np.split(grad, grad.shape[axis], axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)


# ----------------------------------------------------------------------
# Module-level functional API
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a tensor (mirrors ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(*shape, dtype=DEFAULT_DTYPE, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def zeros_like(t: Tensor) -> Tensor:
    return Tensor(np.zeros_like(t.data))


def ones(*shape, dtype=DEFAULT_DTYPE, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def ones_like(t: Tensor) -> Tensor:
    return Tensor(np.ones_like(t.data))


def full(shape, value, dtype=DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.full(shape, value, dtype=dtype))


def arange(*args, dtype=DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.arange(*args, dtype=dtype))


def eye(n: int, dtype=DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.eye(n, dtype=dtype))


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    return Stack.apply(*tensors, axis=axis)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    return Concat.apply(*tensors, axis=axis)


def where(cond, a, b) -> Tensor:
    return Where.apply(cond, a, b)


def maximum(a, b) -> Tensor:
    return Maximum.apply(a, b)


def minimum(a, b) -> Tensor:
    return Minimum.apply(a, b)


def matmul(a, b) -> Tensor:
    """Matrix multiply — the sole compute primitive of the paper's compressor."""
    return MatMul.apply(a, b)


def exp(a) -> Tensor:
    return Exp.apply(a)


def log(a) -> Tensor:
    return Log.apply(a)


def sqrt(a) -> Tensor:
    return Sqrt.apply(a)


def tanh(a) -> Tensor:
    return Tanh.apply(a)


def sigmoid(a) -> Tensor:
    return Sigmoid.apply(a)


def relu(a) -> Tensor:
    return ReLU.apply(a)


def abs(a) -> Tensor:  # noqa: A001 - mirrors torch.abs
    return Abs.apply(a)


def clip(a, lo: float, hi: float) -> Tensor:
    return Clip.apply(a, lo=float(lo), hi=float(hi))
