"""Seeded fault-storm generator.

A *storm* is a :class:`~repro.faults.FaultPlan` shaped like a real
outage rather than a single scripted failure:

* **bursts** — runs of consecutive transient faults (host-link timeouts,
  launch failures) concentrated on one platform, sized to trip that
  platform's circuit breaker;
* **compile flakes** — transient toolchain failures (injected OOMs whose
  ``deterministic`` flag is false), exercising the plan cache's bounded
  negative-TTL re-probe path;
* **background flakiness** — an optional per-event fault rate across all
  platforms, drawn from the plan's seeded RNG.

The generator is a pure function of ``(seed, knobs)``: the same call
returns the same plan, and the plan itself serializes to JSON, so a soak
failure in CI replays bit-for-bit from its seed alone.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan

#: Transient run-site fault kinds a storm draws bursts from.  Deliberately
#: excludes ``device_lost`` — storms model platforms that *recover*, which
#: is what circuit breakers exist for; a lost device is permanent failover
#: territory and already covered by the resilience tests.
STORM_RUN_KINDS = ("host_link_timeout", "launch_failure")


def fault_storm(
    seed: int = 0,
    *,
    platforms: tuple[str, ...] = ("ipu", "a100"),
    bursts: int = 2,
    burst_len: int = 4,
    burst_spacing: int = 12,
    compile_flakes: int = 1,
    background_rate: float = 0.0,
) -> FaultPlan:
    """Generate a seeded storm plan.

    Parameters
    ----------
    seed:
        Drives both burst placement here and the plan's own RNG (used by
        rate-based specs at injection time).
    platforms:
        Pool the bursts strike; each burst picks one platform.
    bursts:
        Number of fault bursts.
    burst_len:
        Consecutive run-site events each burst hits on its platform.
        Size it at or above the breaker's ``failure_threshold`` to
        guarantee a trip.
    burst_spacing:
        Mean gap (in matching run-site events) between burst onsets;
        actual offsets jitter around multiples of it.
    compile_flakes:
        Transient compile failures to sprinkle in (bounded-TTL negative
        cache entries).
    background_rate:
        Per-event probability of a background host-link timeout on any
        platform (0 disables).
    """
    if bursts < 0:
        raise ConfigError(f"bursts must be >= 0, got {bursts}")
    if burst_len < 1:
        raise ConfigError(f"burst_len must be >= 1, got {burst_len}")
    if burst_spacing < 1:
        raise ConfigError(f"burst_spacing must be >= 1, got {burst_spacing}")
    if compile_flakes < 0:
        raise ConfigError(f"compile_flakes must be >= 0, got {compile_flakes}")
    if not 0.0 <= background_rate <= 1.0:
        raise ConfigError(f"background_rate must be in [0, 1], got {background_rate}")
    if bursts and not platforms:
        raise ConfigError("a storm with bursts needs at least one platform")

    rng = np.random.default_rng(seed)
    plan = FaultPlan(seed=seed)
    for b in range(bursts):
        platform = str(platforms[int(rng.integers(len(platforms)))])
        kind = str(STORM_RUN_KINDS[int(rng.integers(len(STORM_RUN_KINDS)))])
        # Onset jitters around b * burst_spacing; `after` counts *matching*
        # events (same site, same platform), so bursts on different
        # platforms advance independently.
        onset = b * burst_spacing + int(rng.integers(0, burst_spacing))
        plan.add("run", kind, after=onset, times=burst_len, platform=platform)
    for f in range(compile_flakes):
        # Injected OOMs carry deterministic=False: the plan cache may
        # re-probe them after its negative TTL instead of blacklisting
        # the configuration forever.
        plan.add("compile", "oom", after=int(rng.integers(1, 6)) + 6 * f, times=1)
    if background_rate > 0:
        plan.add("run", "host_link_timeout", rate=background_rate)
    return plan


def sdc_storm(
    seed: int = 0,
    *,
    gemm_flips: int = 3,
    output_flips: int = 2,
    snapshot_flips: int = 1,
    spacing: int = 24,
) -> FaultPlan:
    """Generate a seeded silent-data-corruption storm.

    SDC faults never raise — each one flips the exponent MSB of one
    element in a live buffer (see :func:`repro.faults.corrupt_buffer`)
    and the wrong bytes propagate until an integrity guard notices:

    * ``gemm_flips`` strikes hit *consecutive* tiled fast-path GEMM
      products.  A serve dispatch runs two GEMMs, so any run of three
      consecutive flips puts at least two detections inside one worker's
      dispatch — which is what makes the fleet quarantine trigger a
      property of the plan rather than of routing luck.
    * ``output_flips`` strikes hit finished device output buffers at the
      program-run boundary, spaced at least two events apart so a
      detection's recompute is never itself corrupted into an
      undetectable loop.
    * ``snapshot_flips`` strikes poison compiled plans inside warm
      handoff snapshots as they are restored (the event is only consumed
      when a restore actually carries program entries).

    Same contract as :func:`fault_storm`: a pure function of
    ``(seed, knobs)`` that serializes to JSON and replays bit-for-bit.
    """
    if gemm_flips < 0 or output_flips < 0 or snapshot_flips < 0:
        raise ConfigError("SDC flip counts must be >= 0")
    if spacing < 2:
        raise ConfigError(f"spacing must be >= 2, got {spacing}")
    rng = np.random.default_rng(seed)
    plan = FaultPlan(seed=seed)
    if gemm_flips:
        plan.add(
            "gemm", "sdc_bit_flip",
            after=int(rng.integers(2, 2 + spacing)), times=gemm_flips,
        )
    onset = int(rng.integers(0, spacing))
    for _ in range(output_flips):
        plan.add("device_output", "sdc_bit_flip", after=onset, times=1)
        onset += 2 + int(rng.integers(0, spacing))
    if snapshot_flips:
        plan.add("snapshot", "sdc_bit_flip", times=snapshot_flips)
    return plan
