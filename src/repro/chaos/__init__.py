"""Chaos engineering for the serving stack.

`repro.faults` can script *one* failure; production outages arrive as
*storms* — bursts of correlated faults concentrated on a platform, with
background flakiness everywhere.  This package generates seeded storms
(:func:`fault_storm`) and soaks the full
:class:`~repro.serve.service.CompressionService` under them
(:func:`run_soak`), asserting the overload contract end to end:

* every accepted request's output is bit-identical to the unfaulted
  compressor (chaos may slow or shed work — never corrupt it);
* every request is accounted for exactly once (served, shed, or failed —
  no silent drops);
* modelled p95 latency of accepted requests stays within budget;
* circuit breakers complete a full open -> half-open -> closed cycle.

Everything is seeded and priced on the modelled clock, so a soak is a
deterministic test that replays bit-for-bit — in CI and on a laptop.
See ``python -m repro chaos-soak`` and ``docs/RESILIENCE.md``.
"""

from repro.chaos.fleet import FleetSoakConfig, FleetSoakReport, run_fleet_soak
from repro.chaos.soak import SoakConfig, SoakReport, reference_output, run_soak
from repro.chaos.storm import STORM_RUN_KINDS, fault_storm, sdc_storm

__all__ = [
    "STORM_RUN_KINDS",
    "FleetSoakConfig",
    "FleetSoakReport",
    "SoakConfig",
    "SoakReport",
    "fault_storm",
    "sdc_storm",
    "reference_output",
    "run_fleet_soak",
    "run_soak",
]
