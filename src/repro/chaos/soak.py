"""Chaos soak: replay a fault storm through the full serving stack.

:func:`run_soak` builds a seeded synthetic trace and a seeded
:func:`~repro.chaos.storm.fault_storm`, replays the trace through a
:class:`~repro.serve.service.CompressionService` configured with an
:class:`~repro.serve.overload.OverloadPolicy` while the storm is armed,
and checks the overload contract:

``bit_identity``
    Every accepted response is bit-identical to the unfaulted host
    compressor evaluated at the configuration that was actually served
    (the resolved ladder attempt + the possibly-degraded chop factor).
    Chaos may slow, degrade, or shed work — never corrupt it.
``accounting``
    served + shed + failed covers every request exactly once; every shed
    carries an explicit :class:`~repro.errors.ShedError`.
``p95_latency``
    Modelled p95 latency of accepted requests stays within
    ``p95_budget_s``.
``breaker_cycle``
    At least one breaker completed a full open -> half-open -> closed
    recovery cycle (proof the service both isolated a sick platform and
    let it back in).

The whole soak runs on the modelled clock with seeded inputs: a failure
replays bit-for-bit from ``SoakConfig`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.storm import fault_storm
from repro.core.api import make_compressor
from repro.errors import ConfigError, ShedError
from repro.faults.injector import FaultInjector
from repro.serve.overload import BreakerPolicy, OverloadPolicy
from repro.serve.service import CompressionService
from repro.serve.stats import ServerStats
from repro.serve.trace import synthetic_trace
from repro.tensor import Tensor


@dataclass
class SoakConfig:
    """Everything a soak run depends on — seeded and replayable."""

    seed: int = 0
    n_requests: int = 160
    platforms: tuple[str, ...] = ("ipu", "a100")
    max_batch: int = 8
    max_wait: float = 0.002
    rate: float = 2000.0               # trace arrivals per modelled second
    # Overload policy under test.
    deadline: float | None = 0.05      # generous: sheds the tail, not the bulk
    shed_policy: str = "shed"
    max_queue_depth: int | None = 64
    failure_threshold: int = 3
    open_seconds: float = 0.005
    hedge_queue_seconds: float | None = None
    negative_ttl: int | None = 8
    # Storm shape (see :func:`fault_storm`).
    bursts: int = 2
    burst_len: int = 4
    burst_spacing: int = 12
    compile_flakes: int = 1
    background_rate: float = 0.0
    # SLO under chaos.
    p95_budget_s: float = 0.05
    require_breaker_cycle: bool = True

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.p95_budget_s <= 0:
            raise ConfigError(f"p95_budget_s must be > 0, got {self.p95_budget_s}")

    def overload_policy(self) -> OverloadPolicy:
        return OverloadPolicy(
            default_deadline=self.deadline,
            shed_policy=self.shed_policy,
            max_queue_depth=self.max_queue_depth,
            breaker=BreakerPolicy(
                failure_threshold=self.failure_threshold,
                open_seconds=self.open_seconds,
            ),
            hedge_queue_seconds=self.hedge_queue_seconds,
        )


@dataclass
class SoakReport:
    """Outcome of one soak run: tallies plus named pass/fail checks."""

    config: SoakConfig
    stats: ServerStats
    n_served: int = 0
    n_shed: int = 0
    n_failed: int = 0
    n_degraded: int = 0
    n_faults_fired: int = 0
    breaker_cycles: int = 0
    p95_latency_s: float = 0.0
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def format_report(self) -> str:
        lines = [
            "chaos soak "
            + ("PASSED" if self.passed else "FAILED")
            + f" (seed {self.config.seed}, {self.config.n_requests} requests, "
            f"{self.n_faults_fired} faults fired)",
            f"  served {self.n_served} / shed {self.n_shed} / failed {self.n_failed}"
            f" / degraded {self.n_degraded}",
            f"  p95 latency {self.p95_latency_s * 1e3:.3f} ms modelled"
            f" (budget {self.config.p95_budget_s * 1e3:.3f} ms)",
            f"  breaker cycles {self.breaker_cycles}"
            f" ({len(self.stats.breaker_transitions)} transitions)",
        ]
        for name, ok, detail in self.checks:
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
        return "\n".join(lines)


def reference_output(response) -> np.ndarray:
    """Unfaulted host compute at the configuration actually served.

    The oracle both soaks (single-service and fleet) judge bit-identity
    against: recompress the request's image on the host at the resolved
    ladder attempt's method/s and the possibly-degraded chop factor.
    """
    req = response.request
    attempt = response.attempt
    c, h, w = req.image.shape
    comp = make_compressor(
        h, w,
        method=attempt.method if attempt is not None else req.method,
        cf=req.cf,
        s=attempt.s if attempt is not None else req.s,
        block=req.block,
    )
    return comp.compress(Tensor(req.image[None])).numpy()[0]


def run_soak(config: SoakConfig | None = None) -> SoakReport:
    """Run one seeded chaos soak; never raises on contract violations —
    they come back as failed checks in the report."""
    config = config if config is not None else SoakConfig()
    trace = synthetic_trace(
        n=config.n_requests, seed=config.seed, rate=config.rate
    )
    storm = fault_storm(
        config.seed + 1,
        platforms=config.platforms,
        bursts=config.bursts,
        burst_len=config.burst_len,
        burst_spacing=config.burst_spacing,
        compile_flakes=config.compile_flakes,
        background_rate=config.background_rate,
    )
    service = CompressionService(
        config.platforms,
        max_batch=config.max_batch,
        max_wait=config.max_wait,
        negative_ttl=config.negative_ttl,
        overload=config.overload_policy(),
    )
    with FaultInjector(storm) as injector:
        responses, stats = service.process(trace)

    report = SoakReport(
        config=config,
        stats=stats,
        n_served=len(responses),
        n_shed=len(service.shed),
        n_failed=len(service.failures),
        n_degraded=len(service.degraded_rids),
        n_faults_fired=len(injector.records),
        breaker_cycles=sum(b.cycles() for b in service.breakers.values()),
        p95_latency_s=stats.p95_latency_s,
    )

    # -- bit identity ---------------------------------------------------
    corrupt = [
        r.request.rid
        for r in responses
        if not np.array_equal(r.output, reference_output(r))
    ]
    report.checks.append(
        (
            "bit_identity",
            not corrupt,
            f"{len(responses) - len(corrupt)}/{len(responses)} responses match"
            + (f"; corrupt rids {corrupt[:5]}" if corrupt else ""),
        )
    )

    # -- accounting -----------------------------------------------------
    all_rids = {r.rid for r in trace}
    served = {r.request.rid for r in responses}
    shed = {s.request.rid for s in service.shed}
    failed = {f.request.rid for f in service.failures}
    overlap = (served & shed) | (served & failed) | (shed & failed)
    missing = all_rids - served - shed - failed
    typed = all(isinstance(s.error, ShedError) for s in service.shed)
    ok = not overlap and not missing and typed
    report.checks.append(
        (
            "accounting",
            ok,
            f"served {len(served)} + shed {len(shed)} + failed {len(failed)}"
            f" = {len(served) + len(shed) + len(failed)}/{len(all_rids)}"
            + (f"; missing {sorted(missing)[:5]}" if missing else "")
            + (f"; double-counted {sorted(overlap)[:5]}" if overlap else "")
            + ("" if typed else "; shed without ShedError"),
        )
    )

    # -- latency SLO ----------------------------------------------------
    report.checks.append(
        (
            "p95_latency",
            report.p95_latency_s <= config.p95_budget_s,
            f"{report.p95_latency_s * 1e3:.3f} ms <= "
            f"{config.p95_budget_s * 1e3:.3f} ms budget",
        )
    )

    # -- breaker recovery -----------------------------------------------
    if config.require_breaker_cycle:
        report.checks.append(
            (
                "breaker_cycle",
                report.breaker_cycles >= 1,
                f"{report.breaker_cycles} full open->half_open->closed cycle(s),"
                f" transitions {[t[1:3] for t in stats.breaker_transitions]}",
            )
        )
    return report
