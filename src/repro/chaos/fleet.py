"""Fleet chaos soak: a seeded worker-crash storm against fleet SLOs.

:func:`run_fleet_soak` replays a multi-tenant trace through a
:class:`~repro.fleet.FleetRouter` while a seeded
:func:`~repro.fleet.worker_storm` kills workers mid-trace, then checks
the fleet contract:

``bit_identity``
    Every response — including replays of requests pulled from crashed
    workers' queues — is bit-identical to unfaulted host compute at the
    configuration actually served.
``accounting``
    served + shed + failed covers every request of every tenant exactly
    once; every shed carries an explicit
    :class:`~repro.errors.ShedError`.
``tenant_p95``
    Each tenant's modelled p95 latency stays within budget.
``fairness``
    Quota shedding lands on the over-share tenant(s).  Two bounds: no
    tenant's window occupancy at a contended admission ever exceeded its
    weighted-share slots (the quota itself), and no within-share tenant
    both loses more than the starvation tolerance to quota clipping *and*
    ends up served a smaller fraction of its demand than an over-share
    tenant — under sustained saturation everyone is clipped toward their
    weighted share, but a within-share tenant faring worse than the hog
    would be starvation, not fairness.
``quota_enforced``
    The abusive tenant actually hit the quota (the fairness check is
    vacuous on an idle fleet — this proves contention happened).
``crash_storm``
    The scripted storm actually struck at least the configured number of
    distinct workers (the acceptance bar is a property of the run, not
    the plan).
``recovery``
    Every faulted worker rejoined and served traffic after rejoining.
``warm_handoff``
    Every crash victim's post-handoff cache hit rate is within
    ``handoff_tolerance`` of its pre-crash rate — the snapshot restore
    made the replacement warm, not cold.

With ``slo=True`` (PR 8) the soak runs under the full observatory — a
:class:`~repro.obs.Tracer` with fleet trace propagation, an
:class:`~repro.obs.SLOMonitor` with burn-rate rules sized to the soak's
modelled rate, and a :class:`~repro.obs.FlightRecorder` — and adds:

``slo_determinism``
    Two same-seed instrumented runs emit byte-identical trace JSONL and
    byte-identical SLO alert timelines (same alerts, same modelled
    fire/clear timestamps).
``trace_valid``
    Every trace with spans passes the extended
    :func:`~repro.obs.validate_trace` (cross-worker parent links, leaf
    sums exact per hop), and every replayed request's trace resolves to
    a single ``fleet.request`` span tree.
``slo_alerts``
    At least one burn-rate alert fired during the storm and every fire
    has a matching clear, so the timeline assertion is not vacuous.
``critical_path``
    The :class:`~repro.obs.CriticalPathAnalyzer` attributes >= 95% of
    the p95-tail latency to named stages.
``zero_overhead``
    A third, uninstrumented run produces bit-identical responses and
    modelled timings — observability priced at exactly zero when off.

A failing soak dumps a flight-recorder post-mortem bundle (recent spans
per worker + metrics snapshot + alert timeline) into the report.

Like :func:`~repro.chaos.soak.run_soak`, everything is seeded and priced
on the modelled clock: a failing run replays bit-for-bit from
:class:`FleetSoakConfig` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.chaos.soak import reference_output
from repro.chaos.storm import sdc_storm
from repro.errors import ConfigError, IntegrityError, ShedError
from repro.faults import FaultInjector, FaultPlan
from repro.fleet import (
    FleetRouter,
    FleetStats,
    QuarantinePolicy,
    TenantPolicy,
    WorkerFaultPlan,
    multi_tenant_trace,
    worker_storm,
)
from repro.integrity import policy as _ipolicy
from repro.integrity.policy import integrity_guards
from repro.obs import (
    CriticalPathAnalyzer,
    FlightRecorder,
    MetricsRegistry,
    SLOMonitor,
    SLORule,
    Tracer,
    validate_trace,
)
from repro.serve.overload import OverloadPolicy


@dataclass
class FleetSoakConfig:
    """Everything a fleet soak depends on — seeded and replayable."""

    seed: int = 0
    n_requests: int = 1200
    n_workers: int = 8
    worker_platforms: tuple[str, ...] = ("ipu", "a100")
    rate: float = 12000.0              # aggregate arrivals per modelled second
    tenants: dict[str, float] | None = None   # traffic mix (None = default)
    # Tenant quota policy: equal weights by default, so the abusive
    # default-mix tenant ("burst", 55% of traffic vs a 25% fair share)
    # is the one the quota bites.
    tenant_weights: dict[str, float] = field(default_factory=dict)
    quota_window: int = 128
    quota_burst: float = 1.25
    contention_depth: int = 24
    # A within-share tenant may still lose the odd request to windowed
    # quota clipping when its own arrivals burst; starvation is a quota-
    # shed *fraction* above this while another tenant is being shed.
    starvation_tolerance: float = 0.02
    # Routing and handoff.
    spill_depth: int = 12
    vnodes: int = 32
    snapshot_interval: int = 32
    # Worker storm shape.
    crashes: int = 2
    hangs: int = 1
    slow_restarts: int = 0
    restart_after: int = 120
    # Per-worker overload policy (breakers off: this soak is about
    # worker-level faults, not platform-level ones).
    deadline: float | None = 0.05
    max_queue_depth: int | None = 64
    max_batch: int = 8
    max_wait: float = 0.002
    # SLOs.
    p95_budget_s: float = 0.06
    handoff_tolerance: float = 0.05
    # Silent-data-corruption storm (sdc=True): a seeded
    # :func:`~repro.chaos.storm.sdc_storm` flips bits in live buffers
    # while the integrity guards and a fleet QuarantinePolicy are armed.
    # The soak then asserts detection is total (injected == detected per
    # site), responses stay bit-identical to the unfaulted oracle, the
    # corrupting worker is benched and rejoins after its scrub, and the
    # guards are transparent on clean data.
    sdc: bool = False
    sdc_gemm_flips: int = 3
    sdc_output_flips: int = 2
    sdc_snapshot_flips: int = 1
    sdc_spacing: int = 24
    quarantine_threshold: int = 2
    quarantine_ordinals: int = 96
    # Online observatory (slo=True): trace propagation + burn-rate
    # alerts + flight recorder, plus the determinism / attribution /
    # zero-overhead checks.  Off by default: the base soak stays the
    # uninstrumented fast path.
    slo: bool = False
    slo_rules: tuple = ()              # () = rules sized to this soak
    flight_capacity: int = 128

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.n_workers < 2:
            raise ConfigError(f"a fleet soak needs >= 2 workers, got {self.n_workers}")
        if self.crashes + self.hangs + self.slow_restarts > self.n_workers:
            raise ConfigError("more worker faults than workers")
        if self.p95_budget_s <= 0:
            raise ConfigError(f"p95_budget_s must be > 0, got {self.p95_budget_s}")
        if not 0 <= self.handoff_tolerance <= 1:
            raise ConfigError(
                f"handoff_tolerance must be in [0, 1], got {self.handoff_tolerance}"
            )
        if self.sdc and self.sdc_gemm_flips + self.sdc_output_flips == 0:
            raise ConfigError("an SDC soak needs at least one gemm or output flip")

    # ------------------------------------------------------------------
    def overload_policy(self) -> OverloadPolicy:
        return OverloadPolicy(
            default_deadline=self.deadline,
            shed_policy="shed",
            max_queue_depth=self.max_queue_depth,
            breaker=None,
        )

    def tenant_policy(self) -> TenantPolicy:
        return TenantPolicy(
            weights=dict(self.tenant_weights),
            window=self.quota_window,
            burst=self.quota_burst,
            contention_depth=self.contention_depth,
        )

    def storm(self) -> WorkerFaultPlan:
        """The worker storm, with onsets held past the first snapshot
        round so every crash victim has a warm snapshot to restore."""
        plan = worker_storm(
            self.seed + 1,
            workers=tuple(f"w{i}" for i in range(self.n_workers)),
            crashes=self.crashes,
            hangs=self.hangs,
            slow_restarts=self.slow_restarts,
            span=self.n_requests,
            restart_after=self.restart_after,
        )
        min_onset = 2 * self.snapshot_interval
        adjusted = WorkerFaultPlan(seed=plan.seed)
        for fault in plan:
            adjusted.faults.append(
                replace(fault, at_request=max(fault.at_request, min_onset))
            )
        return adjusted

    def sdc_plan(self) -> FaultPlan:
        """The SDC storm; seeded apart from the worker storm's stream."""
        return sdc_storm(
            self.seed + 2,
            gemm_flips=self.sdc_gemm_flips,
            output_flips=self.sdc_output_flips,
            snapshot_flips=self.sdc_snapshot_flips if self.crashes else 0,
            spacing=self.sdc_spacing,
        )

    def quarantine_policy(self) -> QuarantinePolicy:
        return QuarantinePolicy(
            fault_threshold=self.quarantine_threshold,
            quarantine_ordinals=self.quarantine_ordinals,
        )

    def slo_rules_resolved(self) -> tuple:
        """The burn-rate rules the observatory runs under.

        Defaults are sized to the soak's arrival rate: the long window
        covers ~256 arrivals and the short ~64, so a trace lasting a
        tenth of a modelled second still gives the multi-window alert
        enough observations to fire and to clear.
        """
        if self.slo_rules:
            return tuple(self.slo_rules)
        long_w = 256.0 / self.rate
        short_w = 64.0 / self.rate
        # Slow-burn profile: fire when both windows burn the budget 1.2x
        # too fast, clear when the short window recovers below 0.6 — the
        # quota-shed cluster a crash storm provokes breaches this, and
        # recovery after the storm clears it, at exact modelled times.
        burn, clear = 1.2, 0.6
        return (
            SLORule(
                name="latency_p95", signal="latency",
                objective=self.p95_budget_s, budget=0.05,
                short_window=short_w, long_window=long_w,
                burn_threshold=burn, clear_burn=clear,
            ),
            SLORule(
                name="shed_ratio", signal="shed", budget=0.05,
                short_window=short_w, long_window=long_w,
                burn_threshold=burn, clear_burn=clear,
            ),
            SLORule(
                name="tenant_quota", signal="quota_shed", budget=0.10,
                per_label=True, short_window=short_w, long_window=long_w,
                burn_threshold=burn, clear_burn=clear,
            ),
            SLORule(
                name="breaker_open", signal="breaker_open", budget=0.10,
                per_label=True, min_events=1,
                short_window=short_w, long_window=long_w,
                burn_threshold=burn, clear_burn=clear,
            ),
        )


@dataclass
class FleetSoakReport:
    """Outcome of one fleet soak: tallies plus named pass/fail checks."""

    config: FleetSoakConfig
    stats: FleetStats
    n_served: int = 0
    n_shed: int = 0
    n_failed: int = 0
    n_quota_shed: int = 0
    n_crashes: int = 0
    n_hangs: int = 0
    n_replays: int = 0
    n_handoffs: int = 0
    # SDC-mode tallies (sdc=True runs only).
    n_sdc_injected: int = 0
    n_sdc_detected: int = 0
    n_sdc_corrected: int = 0
    n_quarantines: int = 0
    n_scrub_dropped: int = 0
    checks: list[tuple[str, bool, str]] = field(default_factory=list)
    # Observatory outputs (slo=True runs only).
    slo_timeline: list = field(default_factory=list)
    n_alerts: int = 0
    p95_tail_coverage: float = 0.0
    postmortem: dict | None = None

    @property
    def passed(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def format_report(self) -> str:
        lines = [
            "fleet soak "
            + ("PASSED" if self.passed else "FAILED")
            + f" (seed {self.config.seed}, {self.config.n_requests} requests, "
            f"{self.config.n_workers} workers)",
            f"  served {self.n_served} / shed {self.n_shed} "
            f"(quota {self.n_quota_shed}) / failed {self.n_failed}",
            f"  {self.n_crashes} crashes, {self.n_hangs} hangs, "
            f"{self.n_replays} replays, {self.n_handoffs} warm handoffs",
        ]
        if self.config.sdc:
            lines.append(
                f"  SDC: {self.n_sdc_injected} injected, "
                f"{self.n_sdc_detected} detected "
                f"({self.n_sdc_corrected} corrected in place), "
                f"{self.n_quarantines} quarantines, "
                f"{self.n_scrub_dropped} plans scrubbed"
            )
        if self.config.slo:
            lines.append(
                f"  {self.n_alerts} SLO alerts fired; p95-tail attribution "
                f"{self.p95_tail_coverage:.1%}"
            )
            for e in self.slo_timeline:
                label = f"{{{e['label']}}}" if e["label"] else ""
                lines.append(
                    f"    {e['time'] * 1e3:10.3f} ms  {e['kind']:<5} "
                    f"{e['rule']}{label}"
                )
        for name in sorted(self.stats.tenants):
            t = self.stats.tenants[name]
            lines.append(
                f"  tenant {name}: {t.n_served}/{t.n_requests} served, "
                f"p95 {t.p95_latency_s * 1e3:.3f} ms, quota shed {t.n_quota_shed}"
            )
        for name, ok, detail in self.checks:
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
        return "\n".join(lines)


@dataclass
class _ObservedRun:
    """One instrumented soak run: the fleet outcome plus the observatory."""

    responses: list
    stats: FleetStats
    router: FleetRouter
    tracer: Tracer
    slo: SLOMonitor
    flight: FlightRecorder
    injector: FaultInjector | None = None
    integrity: dict = field(default_factory=dict)


def _run_fleet(
    config: FleetSoakConfig,
    *,
    instrumented: bool,
    sdc: bool | None = None,
    guards: bool | None = None,
):
    """One soak replay from scratch; everything derives from ``config``.

    ``sdc`` arms the seeded SDC injector and ``guards`` the integrity
    policy; both default to ``config.sdc``.  The transparency legs of the
    SDC contract run the same config with one of them off.
    """
    sdc = config.sdc if sdc is None else sdc
    guards = config.sdc if guards is None else guards
    trace = multi_tenant_trace(
        config.n_requests,
        seed=config.seed,
        tenants=config.tenants,
        rate=config.rate,
    )
    tracer = slo = flight = None
    registry = None
    if instrumented:
        # Private registry: instrumented runs must not leak instruments
        # into the process default (the zero-overhead run reads it).
        registry = MetricsRegistry()
        tracer = Tracer(seed=config.seed)
        flight = FlightRecorder(
            capacity=config.flight_capacity, registry=registry
        ).attach(tracer)
        slo = SLOMonitor(
            rules=config.slo_rules_resolved(),
            tracer=tracer,
            recorder=flight,
            registry=registry,
        )
    router = FleetRouter(
        config.n_workers,
        worker_platforms=config.worker_platforms,
        vnodes=config.vnodes,
        spill_depth=config.spill_depth,
        tenant_policy=config.tenant_policy(),
        overload=config.overload_policy(),
        fault_plan=config.storm(),
        snapshot_interval=config.snapshot_interval,
        max_batch=config.max_batch,
        max_wait=config.max_wait,
        tracer=tracer,
        registry=registry,
        slo=slo,
        quarantine=config.quarantine_policy() if config.sdc else None,
    )
    injector = None
    integrity: dict = {}
    if guards:
        _ipolicy.reset_integrity_stats()
    # The injector and guards are armed ONLY around the replay itself:
    # the oracle recomputes in the checks below must see neither scripted
    # events (which would desync injected-vs-detected accounting) nor
    # corruption (which would poison the reference).
    if sdc and guards:
        with FaultInjector(config.sdc_plan()) as injector, integrity_guards():
            responses, stats = router.process(trace)
    elif sdc:
        with FaultInjector(config.sdc_plan()) as injector:
            responses, stats = router.process(trace)
    elif guards:
        with integrity_guards():
            responses, stats = router.process(trace)
    else:
        responses, stats = router.process(trace)
    if guards:
        # Snapshot the module tallies now: later replays (determinism,
        # transparency) reset the same globals.
        integrity = _ipolicy.integrity_stats()
    return _ObservedRun(
        responses=responses, stats=stats, router=router,
        tracer=tracer, slo=slo, flight=flight,
        injector=injector, integrity=integrity,
    )


def _response_signature(run: _ObservedRun) -> list[tuple]:
    """Everything the zero-overhead bar compares: outcomes, modelled
    timings, and output bytes, in deterministic order."""
    sig = [
        (r.request.rid, r.platform, r.start, r.finish, r.output.tobytes())
        for r in run.responses
    ]
    sig.append(("shed", tuple(sorted(s.request.rid for s in run.router.all_shed()))))
    sig.append(("failed", tuple(sorted(f.request.rid for f in run.router.all_failures()))))
    return sig


def run_fleet_soak(
    config: FleetSoakConfig | None = None, *, trace_out=None
) -> FleetSoakReport:
    """Run one seeded fleet soak; contract violations come back as failed
    checks in the report, never as exceptions.

    With ``config.slo`` the soak replays three times — twice instrumented
    (byte-level determinism of traces and alert timelines) and once bare
    (zero overhead) — and ``trace_out`` optionally receives the first
    instrumented run's trace JSONL.
    """
    config = config if config is not None else FleetSoakConfig()
    trace = multi_tenant_trace(
        config.n_requests,
        seed=config.seed,
        tenants=config.tenants,
        rate=config.rate,
    )
    run = _run_fleet(config, instrumented=config.slo)
    responses, stats, router = run.responses, run.stats, run.router

    report = FleetSoakReport(
        config=config,
        stats=stats,
        n_served=stats.n_served,
        n_shed=stats.n_shed,
        n_failed=stats.n_failed,
        n_quota_shed=stats.n_quota_shed,
        n_crashes=stats.n_crashes,
        n_hangs=stats.n_hangs,
        n_replays=stats.n_replays,
        n_handoffs=stats.n_handoffs,
    )
    checks = report.checks

    # -- bit identity ---------------------------------------------------
    corrupt = [
        r.request.rid
        for r in responses
        if not np.array_equal(r.output, reference_output(r))
    ]
    checks.append(
        (
            "bit_identity",
            not corrupt,
            f"{len(responses) - len(corrupt)}/{len(responses)} responses match"
            + (f"; corrupt rids {corrupt[:5]}" if corrupt else ""),
        )
    )

    # -- accounting (fleet-wide and per tenant) -------------------------
    all_rids = {r.rid for r in trace}
    served = {r.request.rid for r in responses}
    all_shed = router.all_shed()
    all_failed = router.all_failures()
    shed = {s.request.rid for s in all_shed}
    failed = {f.request.rid for f in all_failed}
    overlap = (served & shed) | (served & failed) | (shed & failed)
    missing = all_rids - served - shed - failed
    typed = all(isinstance(s.error, ShedError) for s in all_shed)
    tenants_balanced = all(
        t.accounted == t.n_requests for t in stats.tenants.values()
    )
    ok = not overlap and not missing and typed and tenants_balanced
    checks.append(
        (
            "accounting",
            ok,
            f"served {len(served)} + shed {len(shed)} + failed {len(failed)}"
            f" = {len(served) + len(shed) + len(failed)}/{len(all_rids)}"
            f" across {len(stats.tenants)} tenants"
            + (f"; missing {sorted(missing)[:5]}" if missing else "")
            + (f"; double-counted {sorted(overlap)[:5]}" if overlap else "")
            + ("" if typed else "; shed without ShedError")
            + ("" if tenants_balanced else "; per-tenant tallies do not balance"),
        )
    )

    # -- per-tenant p95 -------------------------------------------------
    over = {
        name: t.p95_latency_s
        for name, t in stats.tenants.items()
        if t.n_served and t.p95_latency_s > config.p95_budget_s
    }
    worst = max((t.p95_latency_s for t in stats.tenants.values()), default=0.0)
    checks.append(
        (
            "tenant_p95",
            not over,
            f"worst tenant p95 {worst * 1e3:.3f} ms"
            f" (budget {config.p95_budget_s * 1e3:.3f} ms)"
            + (f"; over budget: {sorted(over)}" if over else ""),
        )
    )

    # -- fairness / no starvation ---------------------------------------
    admission = router.admission
    policy = admission.policy
    population = admission.seen_tenants()
    shedding = {name for name, t in stats.tenants.items() if t.n_quota_shed}
    # The best-served over-share tenant sets the bar: under sustained
    # saturation everyone gets clipped toward their weighted share, but a
    # within-share tenant must never fare *worse* than a tenant that was
    # over its share — that would be starvation, not fairness.
    hog_served = max(
        (
            t.n_served / max(1, t.n_requests)
            for name, t in stats.tenants.items()
            if t.n_quota_shed
            and t.n_requests / max(1, stats.n_requests)
            > policy.share(name, population)
        ),
        default=0.0,
    )
    starved: list[str] = []
    hogs: list[str] = []
    for name, t in stats.tenants.items():
        share = policy.share(name, population)
        demand_fraction = t.n_requests / max(1, stats.n_requests)
        quota_shed_fraction = t.n_quota_shed / max(1, t.n_requests)
        served_fraction = t.n_served / max(1, t.n_requests)
        if (
            shedding - {name}
            and demand_fraction <= share
            and quota_shed_fraction > config.starvation_tolerance
            and served_fraction < hog_served
        ):
            starved.append(name)
        # The quota bound itself: no tenant's window occupancy at a
        # contended admission ever exceeded its weighted-share slots.
        if admission.max_contended_occupancy.get(name, 0) > admission.quota_slots(name):
            hogs.append(name)
    checks.append(
        (
            "fairness",
            not starved and not hogs,
            f"quota shed by tenant "
            f"{ {n: stats.tenants[n].n_quota_shed for n in sorted(stats.tenants)} }"
            + (f"; starved within-share tenants {starved}" if starved else "")
            + (f"; over-share contended admits by {hogs}" if hogs else ""),
        )
    )
    checks.append(
        (
            "quota_enforced",
            stats.n_quota_shed > 0,
            f"{stats.n_quota_shed} quota sheds"
            + ("" if stats.n_quota_shed else " — fleet never contended"),
        )
    )

    # -- the storm actually struck --------------------------------------
    struck = {w.name for w in stats.workers if w.n_crashes or w.n_hangs}
    expected = config.crashes + config.slow_restarts
    checks.append(
        (
            "crash_storm",
            stats.n_crashes >= expected and len(struck) >= expected,
            f"{stats.n_crashes} crashes across {len(struck)} distinct workers"
            f" (expected >= {expected})",
        )
    )

    # -- recovery: every faulted worker rejoined and served -------------
    faulted = [w for w in router.workers.values() if w.n_crashes or w.n_hangs]
    not_up = [w.name for w in faulted if not w.up]
    cold = [
        w.name
        for w in faulted
        if w.n_crashes and w.post_rejoin_hit_rate() is None
    ]
    checks.append(
        (
            "recovery",
            not not_up and not cold,
            f"{len(faulted)} faulted workers rejoined"
            + (f"; still down: {not_up}" if not_up else "")
            + (f"; no post-rejoin traffic: {cold}" if cold else ""),
        )
    )

    # -- warm handoff ----------------------------------------------------
    gaps: list[str] = []
    details: list[str] = []
    for w in stats.workers:
        if not w.n_crashes or w.pre_crash_hit_rate is None:
            continue
        post = w.post_rejoin_hit_rate
        if post is None:
            continue  # already failed the recovery check above
        details.append(f"{w.name} {w.pre_crash_hit_rate:.1%}->{post:.1%}")
        if post < w.pre_crash_hit_rate - config.handoff_tolerance:
            gaps.append(w.name)
    checks.append(
        (
            "warm_handoff",
            not gaps,
            ", ".join(details) if details else "no crash victims to judge",
        )
    )

    if config.sdc:
        _sdc_checks(config, report, run)
    if config.slo:
        _slo_checks(config, report, run, trace_out=trace_out)
        if not report.passed and run.flight is not None:
            report.postmortem = run.flight.dump(
                reason="soak_failure", monitor=run.slo
            )
    return report


def _sdc_checks(
    config: FleetSoakConfig, report: FleetSoakReport, run: _ObservedRun
) -> None:
    """The silent-data-corruption acceptance bars (see FleetSoakConfig)."""
    checks = report.checks
    stats, tallies = run.stats, run.integrity
    injected: dict[str, int] = {}
    for rec in run.injector.records:
        injected[rec.site] = injected.get(rec.site, 0) + 1
    report.n_sdc_injected = sum(injected.values())
    report.n_sdc_detected = sum(
        v for k, v in tallies.items() if k.startswith("detected:")
    )
    report.n_sdc_corrected = sum(
        v for k, v in tallies.items() if k.startswith("corrected:")
    )
    report.n_quarantines = stats.n_quarantines
    report.n_scrub_dropped = stats.n_scrub_dropped

    # -- detection is total: injected == detected, site by site ----------
    sites = set(injected) | {
        k.split(":", 1)[1] for k in tallies if k.startswith("detected:")
    }
    mismatched = {
        site: (injected.get(site, 0), tallies.get(f"detected:{site}", 0))
        for site in sorted(sites)
        if injected.get(site, 0) != tallies.get(f"detected:{site}", 0)
    }
    checks.append(
        (
            "sdc_detected",
            report.n_sdc_injected > 0 and not mismatched,
            f"injected {report.n_sdc_injected} "
            f"{ {s: injected[s] for s in sorted(injected)} }, "
            f"detected {report.n_sdc_detected}"
            + (
                f"; injected != detected at {mismatched}"
                if mismatched
                else ""
            )
            + ("" if report.n_sdc_injected else " — storm never struck"),
        )
    )

    # -- the corrupting worker was benched, scrubbed, and rejoined -------
    still_benched = [
        w.name for w in run.router.workers.values() if w.state == "quarantined"
    ]
    # Every bench must resolve: served out (rejoin) or cut short by a
    # scripted worker fault (whose own rejoin path brings the worker
    # back) — and either way the worker ends the trace serving again.
    benched_down = [
        w.name
        for w in run.router.workers.values()
        if w.n_quarantines and w.state != "up"
    ]
    resolved = stats.n_quarantine_rejoins + stats.n_quarantine_interrupted
    ok = (
        stats.n_quarantines >= 1
        and resolved == stats.n_quarantines
        and not still_benched
        and not benched_down
    )
    checks.append(
        (
            "quarantine",
            ok,
            f"{stats.n_quarantines} quarantine(s), "
            f"{stats.n_quarantine_rejoins} rejoined, "
            f"{stats.n_quarantine_interrupted} fault-interrupted, "
            f"{stats.n_scrub_dropped} plan(s) scrubbed"
            + (f"; still benched: {still_benched}" if still_benched else "")
            + (f"; benched workers not back up: {benched_down}" if benched_down else "")
            + ("" if stats.n_quarantines else " — threshold never tripped"),
        )
    )

    # -- guards are transparent on clean data ----------------------------
    clean_guarded = _run_fleet(config, instrumented=False, sdc=False, guards=True)
    clean_bare = _run_fleet(config, instrumented=False, sdc=False, guards=False)
    identical = _response_signature(clean_guarded) == _response_signature(clean_bare)
    spurious = sum(
        v for k, v in clean_guarded.integrity.items() if k.startswith("detected:")
    )
    checks.append(
        (
            "sdc_zero_overhead",
            identical and spurious == 0,
            "guards-on and guards-off clean replays "
            + ("bit-identical" if identical else "DIVERGED")
            + (f"; {spurious} spurious detections" if spurious else ""),
        )
    )

    # -- stage-boundary integrity: a flipped container byte never decodes
    checks.append(_payload_leg(config))


def _payload_leg(config: FleetSoakConfig) -> tuple[str, bool, str]:
    """One corrupted pack/unpack round trip through the DCZ container."""
    from repro.core.api import make_compressor
    from repro.core.container import pack, unpack

    rng = np.random.default_rng(config.seed + 3)
    x = rng.standard_normal((32, 32)).astype(np.float32)
    comp = make_compressor(32, 32, method="dc", cf=2)
    clean = pack(x, comp)
    plan = FaultPlan(seed=config.seed + 3)
    plan.add("payload", "bit_flip", times=1)
    with FaultInjector(plan) as inj:
        corrupt = pack(x, comp)
    fired = len(inj.records) == 1
    caught = False
    try:
        unpack(corrupt)
    except IntegrityError:
        caught = True
    decodes, _ = unpack(clean)
    clean_ok = decodes.shape == x.shape
    return (
        "payload_integrity",
        fired and caught and clean_ok,
        "flipped container bit "
        + ("rejected with IntegrityError" if caught else "DECODED SILENTLY")
        + ("" if fired else "; payload fault never fired")
        + ("" if clean_ok else "; clean container failed to decode"),
    )


def _slo_checks(
    config: FleetSoakConfig,
    report: FleetSoakReport,
    run: _ObservedRun,
    *,
    trace_out=None,
) -> None:
    """The observatory acceptance bars (see the module docstring)."""
    checks = report.checks
    tracer, slo = run.tracer, run.slo
    report.slo_timeline = slo.timeline()
    report.n_alerts = slo.fired
    if trace_out is not None:
        tracer.to_jsonl(trace_out)

    # -- determinism: trace bytes and alert timeline ---------------------
    rerun = _run_fleet(config, instrumented=True)
    same_trace = tracer.to_jsonl_str() == rerun.tracer.to_jsonl_str()
    same_timeline = slo.timeline_jsonl() == rerun.slo.timeline_jsonl()
    checks.append(
        (
            "slo_determinism",
            same_trace and same_timeline,
            f"{len(tracer.spans)} spans, {len(tracer.events)} events, "
            f"{len(slo.events)} alert transitions"
            + ("" if same_trace else "; trace JSONL differs between runs")
            + ("" if same_timeline else "; alert timeline differs between runs"),
        )
    )

    # -- every span tree validates; replays form single cross-worker trees
    invalid: list[str] = []
    multi_hop = 0
    traced_roots: set[str] = set()
    for tid in tracer.trace_ids():
        if not tracer.spans_for(tid):
            continue
        try:
            validate_trace(tracer, tid)
        except ConfigError as exc:
            invalid.append(f"{tid}: {exc}")
            continue
        root = tracer.root(tid)
        traced_roots.add(tid)
        if root.name == "fleet.request" and root.attrs.get("hops", 1) > 1:
            multi_hop += 1
    # A replay either ends in a served single tree or an explicit
    # shed/fail event on the same trace — never a dangling hop.
    terminal = {"overload.shed", "request.failed"}
    dangling = sorted(
        {
            e.trace_id
            for e in tracer.events
            if e.name == "fleet.replay"
            and e.trace_id not in traced_roots
            and not any(
                t.trace_id == e.trace_id and t.name in terminal
                for t in tracer.events
            )
        }
    )
    replay_ok = not dangling
    checks.append(
        (
            "trace_valid",
            not invalid and replay_ok,
            f"{len(traced_roots)} span trees validated, "
            f"{multi_hop} cross-worker (multi-hop), "
            f"{report.n_replays} replays"
            + (f"; invalid: {invalid[:3]}" if invalid else "")
            + (f"; dangling replay traces: {dangling[:5]}" if dangling else ""),
        )
    )

    # -- alerts actually fired, and the timeline is well-formed ----------
    fires = [e for e in slo.events if e.kind == "fire"]
    clears = [e for e in slo.events if e.kind == "clear"]
    balanced = len(fires) == len(clears) and not slo.active_alerts()
    checks.append(
        (
            "slo_alerts",
            bool(fires) and balanced,
            f"{len(fires)} fired / {len(clears)} cleared: "
            + (
                ", ".join(
                    sorted({f"{e.rule}" + (f"{{{e.label}}}" if e.label else "") for e in fires})
                )
                or "none — storm never breached a burn threshold"
            ),
        )
    )

    # -- critical-path attribution over the p95 tail ---------------------
    cp = CriticalPathAnalyzer(tracer.spans, tracer.events).report()
    report.p95_tail_coverage = cp.p95_tail_coverage
    checks.append(
        (
            "critical_path",
            cp.p95_tail_coverage >= 0.95,
            f"p95 tail {cp.p95_s * 1e3:.3f} ms, "
            f"{cp.p95_tail_coverage:.1%} attributed to named stages "
            f"(>= 95% required)",
        )
    )

    # -- observability off == bit-identical run --------------------------
    bare = _run_fleet(config, instrumented=False)
    identical = _response_signature(run) == _response_signature(bare)
    checks.append(
        (
            "zero_overhead",
            identical,
            "instrumented and uninstrumented runs "
            + ("bit-identical" if identical else "DIVERGED"),
        )
    )
