"""Fleet chaos soak: a seeded worker-crash storm against fleet SLOs.

:func:`run_fleet_soak` replays a multi-tenant trace through a
:class:`~repro.fleet.FleetRouter` while a seeded
:func:`~repro.fleet.worker_storm` kills workers mid-trace, then checks
the fleet contract:

``bit_identity``
    Every response — including replays of requests pulled from crashed
    workers' queues — is bit-identical to unfaulted host compute at the
    configuration actually served.
``accounting``
    served + shed + failed covers every request of every tenant exactly
    once; every shed carries an explicit
    :class:`~repro.errors.ShedError`.
``tenant_p95``
    Each tenant's modelled p95 latency stays within budget.
``fairness``
    Quota shedding lands on the over-share tenant(s).  Two bounds: no
    tenant's window occupancy at a contended admission ever exceeded its
    weighted-share slots (the quota itself), and no within-share tenant
    both loses more than the starvation tolerance to quota clipping *and*
    ends up served a smaller fraction of its demand than an over-share
    tenant — under sustained saturation everyone is clipped toward their
    weighted share, but a within-share tenant faring worse than the hog
    would be starvation, not fairness.
``quota_enforced``
    The abusive tenant actually hit the quota (the fairness check is
    vacuous on an idle fleet — this proves contention happened).
``crash_storm``
    The scripted storm actually struck at least the configured number of
    distinct workers (the acceptance bar is a property of the run, not
    the plan).
``recovery``
    Every faulted worker rejoined and served traffic after rejoining.
``warm_handoff``
    Every crash victim's post-handoff cache hit rate is within
    ``handoff_tolerance`` of its pre-crash rate — the snapshot restore
    made the replacement warm, not cold.

Like :func:`~repro.chaos.soak.run_soak`, everything is seeded and priced
on the modelled clock: a failing run replays bit-for-bit from
:class:`FleetSoakConfig` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.chaos.soak import reference_output
from repro.errors import ConfigError, ShedError
from repro.fleet import (
    FleetRouter,
    FleetStats,
    TenantPolicy,
    WorkerFaultPlan,
    multi_tenant_trace,
    worker_storm,
)
from repro.serve.overload import OverloadPolicy


@dataclass
class FleetSoakConfig:
    """Everything a fleet soak depends on — seeded and replayable."""

    seed: int = 0
    n_requests: int = 1200
    n_workers: int = 8
    worker_platforms: tuple[str, ...] = ("ipu", "a100")
    rate: float = 12000.0              # aggregate arrivals per modelled second
    tenants: dict[str, float] | None = None   # traffic mix (None = default)
    # Tenant quota policy: equal weights by default, so the abusive
    # default-mix tenant ("burst", 55% of traffic vs a 25% fair share)
    # is the one the quota bites.
    tenant_weights: dict[str, float] = field(default_factory=dict)
    quota_window: int = 128
    quota_burst: float = 1.25
    contention_depth: int = 24
    # A within-share tenant may still lose the odd request to windowed
    # quota clipping when its own arrivals burst; starvation is a quota-
    # shed *fraction* above this while another tenant is being shed.
    starvation_tolerance: float = 0.02
    # Routing and handoff.
    spill_depth: int = 12
    vnodes: int = 32
    snapshot_interval: int = 32
    # Worker storm shape.
    crashes: int = 2
    hangs: int = 1
    slow_restarts: int = 0
    restart_after: int = 120
    # Per-worker overload policy (breakers off: this soak is about
    # worker-level faults, not platform-level ones).
    deadline: float | None = 0.05
    max_queue_depth: int | None = 64
    max_batch: int = 8
    max_wait: float = 0.002
    # SLOs.
    p95_budget_s: float = 0.06
    handoff_tolerance: float = 0.05

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.n_workers < 2:
            raise ConfigError(f"a fleet soak needs >= 2 workers, got {self.n_workers}")
        if self.crashes + self.hangs + self.slow_restarts > self.n_workers:
            raise ConfigError("more worker faults than workers")
        if self.p95_budget_s <= 0:
            raise ConfigError(f"p95_budget_s must be > 0, got {self.p95_budget_s}")
        if not 0 <= self.handoff_tolerance <= 1:
            raise ConfigError(
                f"handoff_tolerance must be in [0, 1], got {self.handoff_tolerance}"
            )

    # ------------------------------------------------------------------
    def overload_policy(self) -> OverloadPolicy:
        return OverloadPolicy(
            default_deadline=self.deadline,
            shed_policy="shed",
            max_queue_depth=self.max_queue_depth,
            breaker=None,
        )

    def tenant_policy(self) -> TenantPolicy:
        return TenantPolicy(
            weights=dict(self.tenant_weights),
            window=self.quota_window,
            burst=self.quota_burst,
            contention_depth=self.contention_depth,
        )

    def storm(self) -> WorkerFaultPlan:
        """The worker storm, with onsets held past the first snapshot
        round so every crash victim has a warm snapshot to restore."""
        plan = worker_storm(
            self.seed + 1,
            workers=tuple(f"w{i}" for i in range(self.n_workers)),
            crashes=self.crashes,
            hangs=self.hangs,
            slow_restarts=self.slow_restarts,
            span=self.n_requests,
            restart_after=self.restart_after,
        )
        min_onset = 2 * self.snapshot_interval
        adjusted = WorkerFaultPlan(seed=plan.seed)
        for fault in plan:
            adjusted.faults.append(
                replace(fault, at_request=max(fault.at_request, min_onset))
            )
        return adjusted


@dataclass
class FleetSoakReport:
    """Outcome of one fleet soak: tallies plus named pass/fail checks."""

    config: FleetSoakConfig
    stats: FleetStats
    n_served: int = 0
    n_shed: int = 0
    n_failed: int = 0
    n_quota_shed: int = 0
    n_crashes: int = 0
    n_hangs: int = 0
    n_replays: int = 0
    n_handoffs: int = 0
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def format_report(self) -> str:
        lines = [
            "fleet soak "
            + ("PASSED" if self.passed else "FAILED")
            + f" (seed {self.config.seed}, {self.config.n_requests} requests, "
            f"{self.config.n_workers} workers)",
            f"  served {self.n_served} / shed {self.n_shed} "
            f"(quota {self.n_quota_shed}) / failed {self.n_failed}",
            f"  {self.n_crashes} crashes, {self.n_hangs} hangs, "
            f"{self.n_replays} replays, {self.n_handoffs} warm handoffs",
        ]
        for name in sorted(self.stats.tenants):
            t = self.stats.tenants[name]
            lines.append(
                f"  tenant {name}: {t.n_served}/{t.n_requests} served, "
                f"p95 {t.p95_latency_s * 1e3:.3f} ms, quota shed {t.n_quota_shed}"
            )
        for name, ok, detail in self.checks:
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
        return "\n".join(lines)


def run_fleet_soak(config: FleetSoakConfig | None = None) -> FleetSoakReport:
    """Run one seeded fleet soak; contract violations come back as failed
    checks in the report, never as exceptions."""
    config = config if config is not None else FleetSoakConfig()
    trace = multi_tenant_trace(
        config.n_requests,
        seed=config.seed,
        tenants=config.tenants,
        rate=config.rate,
    )
    storm = config.storm()
    router = FleetRouter(
        config.n_workers,
        worker_platforms=config.worker_platforms,
        vnodes=config.vnodes,
        spill_depth=config.spill_depth,
        tenant_policy=config.tenant_policy(),
        overload=config.overload_policy(),
        fault_plan=storm,
        snapshot_interval=config.snapshot_interval,
        max_batch=config.max_batch,
        max_wait=config.max_wait,
    )
    responses, stats = router.process(trace)

    report = FleetSoakReport(
        config=config,
        stats=stats,
        n_served=stats.n_served,
        n_shed=stats.n_shed,
        n_failed=stats.n_failed,
        n_quota_shed=stats.n_quota_shed,
        n_crashes=stats.n_crashes,
        n_hangs=stats.n_hangs,
        n_replays=stats.n_replays,
        n_handoffs=stats.n_handoffs,
    )
    checks = report.checks

    # -- bit identity ---------------------------------------------------
    corrupt = [
        r.request.rid
        for r in responses
        if not np.array_equal(r.output, reference_output(r))
    ]
    checks.append(
        (
            "bit_identity",
            not corrupt,
            f"{len(responses) - len(corrupt)}/{len(responses)} responses match"
            + (f"; corrupt rids {corrupt[:5]}" if corrupt else ""),
        )
    )

    # -- accounting (fleet-wide and per tenant) -------------------------
    all_rids = {r.rid for r in trace}
    served = {r.request.rid for r in responses}
    all_shed = router.all_shed()
    all_failed = router.all_failures()
    shed = {s.request.rid for s in all_shed}
    failed = {f.request.rid for f in all_failed}
    overlap = (served & shed) | (served & failed) | (shed & failed)
    missing = all_rids - served - shed - failed
    typed = all(isinstance(s.error, ShedError) for s in all_shed)
    tenants_balanced = all(
        t.accounted == t.n_requests for t in stats.tenants.values()
    )
    ok = not overlap and not missing and typed and tenants_balanced
    checks.append(
        (
            "accounting",
            ok,
            f"served {len(served)} + shed {len(shed)} + failed {len(failed)}"
            f" = {len(served) + len(shed) + len(failed)}/{len(all_rids)}"
            f" across {len(stats.tenants)} tenants"
            + (f"; missing {sorted(missing)[:5]}" if missing else "")
            + (f"; double-counted {sorted(overlap)[:5]}" if overlap else "")
            + ("" if typed else "; shed without ShedError")
            + ("" if tenants_balanced else "; per-tenant tallies do not balance"),
        )
    )

    # -- per-tenant p95 -------------------------------------------------
    over = {
        name: t.p95_latency_s
        for name, t in stats.tenants.items()
        if t.n_served and t.p95_latency_s > config.p95_budget_s
    }
    worst = max((t.p95_latency_s for t in stats.tenants.values()), default=0.0)
    checks.append(
        (
            "tenant_p95",
            not over,
            f"worst tenant p95 {worst * 1e3:.3f} ms"
            f" (budget {config.p95_budget_s * 1e3:.3f} ms)"
            + (f"; over budget: {sorted(over)}" if over else ""),
        )
    )

    # -- fairness / no starvation ---------------------------------------
    admission = router.admission
    policy = admission.policy
    population = admission.seen_tenants()
    shedding = {name for name, t in stats.tenants.items() if t.n_quota_shed}
    # The best-served over-share tenant sets the bar: under sustained
    # saturation everyone gets clipped toward their weighted share, but a
    # within-share tenant must never fare *worse* than a tenant that was
    # over its share — that would be starvation, not fairness.
    hog_served = max(
        (
            t.n_served / max(1, t.n_requests)
            for name, t in stats.tenants.items()
            if t.n_quota_shed
            and t.n_requests / max(1, stats.n_requests)
            > policy.share(name, population)
        ),
        default=0.0,
    )
    starved: list[str] = []
    hogs: list[str] = []
    for name, t in stats.tenants.items():
        share = policy.share(name, population)
        demand_fraction = t.n_requests / max(1, stats.n_requests)
        quota_shed_fraction = t.n_quota_shed / max(1, t.n_requests)
        served_fraction = t.n_served / max(1, t.n_requests)
        if (
            shedding - {name}
            and demand_fraction <= share
            and quota_shed_fraction > config.starvation_tolerance
            and served_fraction < hog_served
        ):
            starved.append(name)
        # The quota bound itself: no tenant's window occupancy at a
        # contended admission ever exceeded its weighted-share slots.
        if admission.max_contended_occupancy.get(name, 0) > admission.quota_slots(name):
            hogs.append(name)
    checks.append(
        (
            "fairness",
            not starved and not hogs,
            f"quota shed by tenant "
            f"{ {n: stats.tenants[n].n_quota_shed for n in sorted(stats.tenants)} }"
            + (f"; starved within-share tenants {starved}" if starved else "")
            + (f"; over-share contended admits by {hogs}" if hogs else ""),
        )
    )
    checks.append(
        (
            "quota_enforced",
            stats.n_quota_shed > 0,
            f"{stats.n_quota_shed} quota sheds"
            + ("" if stats.n_quota_shed else " — fleet never contended"),
        )
    )

    # -- the storm actually struck --------------------------------------
    struck = {w.name for w in stats.workers if w.n_crashes or w.n_hangs}
    expected = config.crashes + config.slow_restarts
    checks.append(
        (
            "crash_storm",
            stats.n_crashes >= expected and len(struck) >= expected,
            f"{stats.n_crashes} crashes across {len(struck)} distinct workers"
            f" (expected >= {expected})",
        )
    )

    # -- recovery: every faulted worker rejoined and served -------------
    faulted = [w for w in router.workers.values() if w.n_crashes or w.n_hangs]
    not_up = [w.name for w in faulted if not w.up]
    cold = [
        w.name
        for w in faulted
        if w.n_crashes and w.post_rejoin_hit_rate() is None
    ]
    checks.append(
        (
            "recovery",
            not not_up and not cold,
            f"{len(faulted)} faulted workers rejoined"
            + (f"; still down: {not_up}" if not_up else "")
            + (f"; no post-rejoin traffic: {cold}" if cold else ""),
        )
    )

    # -- warm handoff ----------------------------------------------------
    gaps: list[str] = []
    details: list[str] = []
    for w in stats.workers:
        if not w.n_crashes or w.pre_crash_hit_rate is None:
            continue
        post = w.post_rejoin_hit_rate
        if post is None:
            continue  # already failed the recovery check above
        details.append(f"{w.name} {w.pre_crash_hit_rate:.1%}->{post:.1%}")
        if post < w.pre_crash_hit_rate - config.handoff_tolerance:
            gaps.append(w.name)
    checks.append(
        (
            "warm_handoff",
            not gaps,
            ", ".join(details) if details else "no crash victims to judge",
        )
    )
    return report
