"""Fig. 3: nonzero-DCT-coefficient heatmap after JPEG quantization.

The paper computes, over 1000 CIFAR10 images and for each (color channel,
quality factor), the fraction of 8x8 blocks whose quantised DCT
coefficient at each position is nonzero.  Lower quality -> stronger
quantization -> more zeros concentrated away from the DC corner — the
observation motivating the upper-left "chop".
"""

from __future__ import annotations

import numpy as np

from repro.baselines.jpeg import JPEGQuantizer
from repro.data import SyntheticCIFAR10

DEFAULT_QUALITIES = (5, 10, 25, 50, 75, 95)


def fig3_heatmap(
    qualities=DEFAULT_QUALITIES,
    *,
    n_images: int = 1000,
    resolution: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """Nonzero fractions, shape (channels, len(qualities), 8, 8).

    Images are scaled to the 0-255 pixel range JPEG quantization tables
    assume.
    """
    ds = SyntheticCIFAR10(n=n_images, resolution=resolution, seed=seed)
    images = np.stack([ds[i][0] for i in range(n_images)])  # (N, 3, H, W)
    lo, hi = images.min(), images.max()
    images = (images - lo) / (hi - lo) * 255.0 - 128.0  # JPEG level shift
    out = np.zeros((images.shape[1], len(qualities), 8, 8), dtype=np.float64)
    for qi, quality in enumerate(qualities):
        quantizer = JPEGQuantizer(quality)
        for ch in range(images.shape[1]):
            out[ch, qi] = quantizer.nonzero_fraction(images[:, ch])
    return out
