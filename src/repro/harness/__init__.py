"""Experiment harness regenerating every table and figure of the paper.

One module per artifact family:

* :mod:`repro.harness.experiments` — the four Table 3 benchmark configs
  with a ``scale`` knob ("tiny"/"small"/"paper").
* :mod:`repro.harness.accuracy`    — compression-vs-accuracy studies
  (Figs. 7, 8, 9, 16).
* :mod:`repro.harness.timing`      — compression/decompression timing
  sweeps over resolution, batch size, platform, and method
  (Figs. 10-15, 17, and the Fig. 14 GPU run).
* :mod:`repro.harness.heatmap`     — the Fig. 3 JPEG nonzero-coefficient
  heatmap.
* :mod:`repro.harness.tables`      — Tables 1-3.
* :mod:`repro.harness.report`      — plain-text rendering helpers.
"""

from repro.harness.experiments import BenchmarkSpec, get_benchmark, BENCHMARKS, SCALES
from repro.harness.accuracy import run_benchmark, compression_study, percent_diff_series
from repro.harness.timing import TimingPoint, measure, timing_sweep, CF_SWEEP
from repro.harness.heatmap import fig3_heatmap
from repro.harness.tables import table1, table2, table3
from repro.harness.report import format_table, format_series

__all__ = [
    "BenchmarkSpec",
    "get_benchmark",
    "BENCHMARKS",
    "SCALES",
    "run_benchmark",
    "compression_study",
    "percent_diff_series",
    "TimingPoint",
    "measure",
    "timing_sweep",
    "CF_SWEEP",
    "fig3_heatmap",
    "table1",
    "table2",
    "table3",
    "format_table",
    "format_series",
]
