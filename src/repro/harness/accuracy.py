"""Accuracy-vs-compression studies (paper Figs. 7, 8, 9, 16).

``compression_study`` trains one model per compression ratio (plus the
no-compression baseline) with identical seeds, mirroring Section 4.2.1:
every training batch is compressed and decompressed before the forward
pass; evaluation uses clean test data.
"""

from __future__ import annotations

from typing import Mapping

from repro.core import make_compressor
from repro.harness.experiments import BenchmarkSpec
from repro.tensor.random import Generator
from repro.train import History, Trainer
from repro.train.metrics import percent_difference


def run_benchmark(
    spec: BenchmarkSpec,
    compressor=None,
    *,
    seed: int = 0,
    epochs: int | None = None,
) -> History:
    """Train ``spec`` once (optionally with a compressor) and return history."""
    gen = Generator(seed)
    model = spec.make_model(gen)
    trainer = Trainer(
        model,
        spec.make_loss(),
        spec.train_config(epochs),
        compressor=compressor,
        classification=spec.classification,
    )
    train_loader, test_loader = spec.loaders(seed)
    return trainer.fit(train_loader, test_loader, epochs)


def compression_study(
    spec: BenchmarkSpec,
    cfs=(2, 3, 4, 5, 6, 7),
    *,
    method: str = "dc",
    seed: int = 0,
    epochs: int | None = None,
    compressor_factory=None,
) -> dict[str, History]:
    """Histories keyed by series label: ``base`` plus one per ratio.

    ``compressor_factory(cf) -> compressor`` overrides the default
    :func:`make_compressor` (used for the ZFP comparison in Fig. 9, where
    ``cf`` is reinterpreted as the matched compression-ratio knob).
    """
    results: dict[str, History] = {
        "base": run_benchmark(spec, None, seed=seed, epochs=epochs)
    }
    for cf in cfs:
        if compressor_factory is not None:
            comp = compressor_factory(cf)
        else:
            comp = make_compressor(spec.resolution, method=method, cf=cf)
        label = f"{comp.ratio:.2f}"
        results[label] = run_benchmark(spec, comp, seed=seed, epochs=epochs)
    return results


def percent_diff_series(
    study: Mapping[str, History], *, use_accuracy: bool = False
) -> dict[str, list[float]]:
    """Fig. 8's y-axis: per-epoch percent difference from the baseline.

    Test loss by default; test accuracy for the classify benchmark.
    """
    base = study["base"]
    base_series = base.test_accuracy if use_accuracy else base.test_loss
    out: dict[str, list[float]] = {}
    for label, hist in study.items():
        if label == "base":
            continue
        series = hist.test_accuracy if use_accuracy else hist.test_loss
        out[label] = [
            percent_difference(v, b) for v, b in zip(series, base_series)
        ]
    return out
