"""Timing sweeps (paper Figs. 10-15 and 17).

Every measurement compiles a fixed-shape compressor program for one
platform (resolution x batch x CF x direction), runs it once on real data
for numerical sanity, and reports the model-estimated end-to-end time —
host-device transfer included, compilation excluded, matching the paper's
methodology (Section 4.1).  Compile failures are captured as data points
with ``status="compile_error"`` because the failures themselves are
results the paper reports (SN30/GroqChip at 512x512, GroqChip beyond
batch 1000).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel import compile_program
from repro.core import make_compressor
from repro.errors import CompileError

CF_SWEEP = (2, 3, 4, 5, 6, 7)
RESOLUTION_SWEEP = (32, 64, 128, 256, 512)
BATCH_SWEEP = (10, 50, 100, 500, 1000, 2000, 5000)
DEFAULT_SAMPLES = 100
DEFAULT_CHANNELS = 3


@dataclass(frozen=True)
class TimingPoint:
    """One cell of a timing figure."""

    platform: str
    direction: str        # "compress" | "decompress"
    method: str           # "dc" | "ps" | "sg"
    resolution: int
    batch: int
    channels: int
    cf: int
    ratio: float
    status: str           # "ok" | "compile_error"
    seconds: float = float("nan")
    reason: str = ""

    @property
    def uncompressed_bytes(self) -> int:
        return self.batch * self.channels * self.resolution * self.resolution * 4

    @property
    def throughput_gbps(self) -> float:
        """GB/s against the uncompressed payload (the paper's convention)."""
        if self.status != "ok":
            return float("nan")
        return self.uncompressed_bytes / self.seconds / 1e9


def measure(
    platform: str,
    *,
    resolution: int,
    cf: int,
    direction: str = "compress",
    batch: int = DEFAULT_SAMPLES,
    channels: int = DEFAULT_CHANNELS,
    method: str = "dc",
    s: int = 2,
    execute: bool = False,
) -> TimingPoint:
    """Compile and time one configuration on one platform.

    ``execute=True`` additionally runs the program on random data and
    verifies the output shape — slower, used by correctness tests; the
    modelled time does not depend on it.
    """
    comp = make_compressor(resolution, method=method, cf=cf, s=s)
    in_shape = (batch, channels, resolution, resolution)
    if direction == "compress":
        fn = comp.compress
        example_shape = in_shape
    elif direction == "decompress":
        fn = comp.decompress
        example_shape = comp.compressed_shape(in_shape)
    else:
        raise ValueError(f"direction must be compress|decompress, got {direction!r}")

    base = dict(
        platform=platform,
        direction=direction,
        method=method,
        resolution=resolution,
        batch=batch,
        channels=channels,
        cf=cf,
        ratio=comp.ratio,
    )
    try:
        program = compile_program(
            fn,
            np.zeros(example_shape, dtype=np.float32),
            platform,
            name=f"{method}-{direction}-{resolution}-cf{cf}",
        )
    except CompileError as exc:
        return TimingPoint(**base, status="compile_error", reason=exc.reason or str(exc))

    if execute:
        rng = np.random.default_rng(0)
        result = program.run(rng.standard_normal(example_shape).astype(np.float32))
        seconds = result.device_seconds
    else:
        seconds = program.estimated_time()
    return TimingPoint(**base, status="ok", seconds=seconds)


def timing_sweep(
    platforms,
    *,
    resolutions=(RESOLUTION_SWEEP,),
    batches=(DEFAULT_SAMPLES,),
    cfs=CF_SWEEP,
    direction: str = "compress",
    method: str = "dc",
    channels: int = DEFAULT_CHANNELS,
    s: int = 2,
) -> list[TimingPoint]:
    """Cartesian sweep over platforms x resolutions x batches x CFs."""
    points = []
    for platform in platforms:
        for resolution in resolutions:
            for batch in batches:
                for cf in cfs:
                    points.append(
                        measure(
                            platform,
                            resolution=resolution,
                            cf=cf,
                            direction=direction,
                            batch=batch,
                            channels=channels,
                            method=method,
                            s=s,
                        )
                    )
    return points
