"""Tables 1-3 of the paper, regenerated from the code's own metadata."""

from __future__ import annotations

from repro.accel.registry import get_platform
from repro.harness.experiments import BENCHMARKS, get_benchmark

_TABLE1_PLATFORMS = ("cs2", "sn30", "groq", "ipu")

# Table 2: the real datasets the synthetic generators stand in for.
_TABLE2 = (
    {
        "Dataset": "ILSVRC 2012-17",
        "Size": "167.62 GB",
        "Type": "General Images",
        "Task": "Classification",
        "Sample Size": "3x256x256",
    },
    {
        "Dataset": "em_graphene_sim",
        "Size": "5 GB",
        "Type": "Electron Micrographs",
        "Task": "Denoising",
        "Sample Size": "1x256x256",
    },
    {
        "Dataset": "optical_damage_ds1",
        "Size": "27 GB",
        "Type": "Laser Optics",
        "Task": "Reconstruction",
        "Sample Size": "3x492x656",
    },
    {
        "Dataset": "cloud_slstr_ds1",
        "Size": "187 GB",
        "Type": "Remote Sensing",
        "Task": "Pixel Segmentation",
        "Sample Size": "3x1200x1500",
    },
)


def table1() -> list[dict[str, object]]:
    """Accelerator specification rows (one per platform column)."""
    return [get_platform(name).table1_row() for name in _TABLE1_PLATFORMS]


def table2() -> list[dict[str, object]]:
    """Dataset inventory (static facts about the paper's datasets)."""
    return [dict(row) for row in _TABLE2]


def table3(scale: str = "paper") -> list[dict[str, object]]:
    """Benchmark configuration rows at the requested scale."""
    return [get_benchmark(name, scale).table3_row() for name in BENCHMARKS]
