"""Plain-text rendering of tables and figure series."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    headers = list(rows[0].keys())
    cells = [[str(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[float]],
    title: str = "",
    fmt: str = "{:9.4f}",
    x_label: str = "epoch",
) -> str:
    """Render {label: values} as one row per label (figure-series dump)."""
    lines = []
    if title:
        lines.append(title)
    labels = list(series)
    n = max(len(list(series[k])) for k in labels) if labels else 0
    lines.append(f"{'series':>12} | " + " ".join(f"{x_label}{i:<3d}" for i in range(1, n + 1)))
    for label in labels:
        vals = " ".join(fmt.format(v) for v in series[label])
        lines.append(f"{label:>12} | {vals}")
    return "\n".join(lines)
