"""The four evaluation benchmarks (paper Table 3) at three scales.

``paper`` scale matches Table 3 exactly (ResNet34 on 3x32x32 at BS=100,
LR=0.001; encoder-decoder on 1x256x256 at BS=32, LR=0.0005; autoencoder
on 1x200x200 at BS=2; UNet on 9x256x256 at BS=4 — all 30 epochs).  The
``tiny``/``small`` scales shrink resolution, width, dataset size, and
epochs so the full study runs on a CPU box; learning rates and the
architecture family are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data import (
    DataLoader,
    EMGrapheneDataset,
    OpticalDamageDataset,
    SLSTRCloudDataset,
    SyntheticCIFAR10,
)
from repro.data.loader import Dataset
from repro.nn import (
    Autoencoder,
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    DeepEncoderDecoder,
    MSELoss,
    Module,
    UNet,
    resnet34,
)
from repro.tensor.random import Generator
from repro.train import TrainConfig

SCALES = ("tiny", "small", "paper")


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 3 row, fully configured for a scale."""

    name: str
    task: str
    network: str
    classification: bool
    channels: int
    resolution: int
    batch_size: int
    lr: float
    epochs: int
    n_train: int
    n_test: int
    make_model: Callable[[Generator], Module]
    make_loss: Callable[[], Module]
    make_train_dataset: Callable[[int], Dataset]
    make_test_dataset: Callable[[int], Dataset]

    @property
    def sample_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.resolution, self.resolution)

    def train_config(self, epochs: int | None = None) -> TrainConfig:
        return TrainConfig(epochs=epochs if epochs is not None else self.epochs, lr=self.lr)

    def loaders(self, seed: int = 0) -> tuple[DataLoader, DataLoader]:
        gen = Generator(seed)
        train = DataLoader(
            self.make_train_dataset(seed), self.batch_size, shuffle=True, gen=gen
        )
        test = DataLoader(self.make_test_dataset(seed), self.batch_size, shuffle=False)
        return train, test

    def table3_row(self) -> dict[str, object]:
        return {
            "Test": self.name,
            "Task": self.task,
            "Network": self.network,
            "Sample Size": f"{self.channels}x{self.resolution}x{self.resolution}",
            "Training Params.": f"BS={self.batch_size}, LR={self.lr}",
        }


def _classify(scale: str) -> BenchmarkSpec:
    res = 32
    cfg = {
        "tiny": dict(bs=32, epochs=3, n_train=192, n_test=96, width=0.125),
        "small": dict(bs=64, epochs=10, n_train=1024, n_test=512, width=0.25),
        "paper": dict(bs=100, epochs=30, n_train=50000, n_test=10000, width=1.0),
    }[scale]
    return BenchmarkSpec(
        name="classify",
        task="Classify images into 10 classes",
        network="ResNet34",
        classification=True,
        channels=3,
        resolution=res,
        batch_size=cfg["bs"],
        lr=0.001,
        epochs=cfg["epochs"],
        n_train=cfg["n_train"],
        n_test=cfg["n_test"],
        make_model=lambda gen: resnet34(width_mult=cfg["width"], gen=gen),
        make_loss=CrossEntropyLoss,
        make_train_dataset=lambda seed: SyntheticCIFAR10(cfg["n_train"], res, seed=seed),
        make_test_dataset=lambda seed: SyntheticCIFAR10(
            cfg["n_test"], res, seed=seed, start=cfg["n_train"]
        ),
    )


def _em_denoise(scale: str) -> BenchmarkSpec:
    cfg = {
        "tiny": dict(res=32, bs=8, epochs=3, n_train=96, n_test=32, base=4, depth=2),
        "small": dict(res=64, bs=16, epochs=10, n_train=256, n_test=64, base=8, depth=3),
        "paper": dict(res=256, bs=32, epochs=30, n_train=4096, n_test=512, base=32, depth=4),
    }[scale]
    return BenchmarkSpec(
        name="em_denoise",
        task="Denoise electron micrographs",
        network="Deep Encoder-Decoder",
        classification=False,
        channels=1,
        resolution=cfg["res"],
        batch_size=cfg["bs"],
        lr=0.0005,
        epochs=cfg["epochs"],
        n_train=cfg["n_train"],
        n_test=cfg["n_test"],
        make_model=lambda gen: DeepEncoderDecoder(
            base_channels=cfg["base"], depth=cfg["depth"], gen=gen
        ),
        make_loss=MSELoss,
        make_train_dataset=lambda seed: EMGrapheneDataset(cfg["n_train"], cfg["res"], seed=seed),
        make_test_dataset=lambda seed: EMGrapheneDataset(
            cfg["n_test"], cfg["res"], seed=seed, start=cfg["n_train"]
        ),
    )


def _optical_damage(scale: str) -> BenchmarkSpec:
    cfg = {
        "tiny": dict(res=24, bs=4, epochs=3, n_train=64, n_test=24, base=4, depth=2),
        "small": dict(res=48, bs=4, epochs=10, n_train=192, n_test=48, base=8, depth=3),
        "paper": dict(res=200, bs=2, epochs=30, n_train=2048, n_test=256, base=16, depth=3),
    }[scale]
    return BenchmarkSpec(
        name="optical_damage",
        task="Reconstruct laser optics images",
        network="Autoencoder",
        classification=False,
        channels=1,
        resolution=cfg["res"],
        batch_size=cfg["bs"],
        lr=0.0005,
        epochs=cfg["epochs"],
        n_train=cfg["n_train"],
        n_test=cfg["n_test"],
        make_model=lambda gen: Autoencoder(
            base_channels=cfg["base"], depth=cfg["depth"], gen=gen
        ),
        make_loss=MSELoss,
        make_train_dataset=lambda seed: OpticalDamageDataset(
            cfg["n_train"], cfg["res"], damaged=False, seed=seed
        ),
        make_test_dataset=lambda seed: OpticalDamageDataset(
            cfg["n_test"], cfg["res"], damaged=False, seed=seed, start=cfg["n_train"]
        ),
    )


def _slstr_cloud(scale: str) -> BenchmarkSpec:
    cfg = {
        "tiny": dict(res=32, bs=2, epochs=3, n_train=32, n_test=16, base=4, depth=2),
        "small": dict(res=64, bs=4, epochs=10, n_train=96, n_test=32, base=8, depth=3),
        "paper": dict(res=256, bs=4, epochs=30, n_train=1024, n_test=256, base=32, depth=4),
    }[scale]
    return BenchmarkSpec(
        name="slstr_cloud",
        task="Identify pixels that are clouds",
        network="UNet",
        classification=False,
        channels=9,
        resolution=cfg["res"],
        batch_size=cfg["bs"],
        lr=0.0005,
        epochs=cfg["epochs"],
        n_train=cfg["n_train"],
        n_test=cfg["n_test"],
        make_model=lambda gen: UNet(
            in_channels=9, base_channels=cfg["base"], depth=cfg["depth"], gen=gen
        ),
        make_loss=BCEWithLogitsLoss,
        make_train_dataset=lambda seed: SLSTRCloudDataset(cfg["n_train"], cfg["res"], seed=seed),
        make_test_dataset=lambda seed: SLSTRCloudDataset(
            cfg["n_test"], cfg["res"], seed=seed, start=cfg["n_train"]
        ),
    )


BENCHMARKS = ("classify", "em_denoise", "optical_damage", "slstr_cloud")
_FACTORIES = {
    "classify": _classify,
    "em_denoise": _em_denoise,
    "optical_damage": _optical_damage,
    "slstr_cloud": _slstr_cloud,
}


def get_benchmark(name: str, scale: str = "tiny") -> BenchmarkSpec:
    """Fetch one of the four Table 3 benchmarks at the given scale."""
    if name not in _FACTORIES:
        raise KeyError(f"unknown benchmark {name!r}; known: {BENCHMARKS}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {SCALES}")
    return _FACTORIES[name](scale)
