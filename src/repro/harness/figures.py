"""One-call figure regeneration, shared by the CLI and notebooks.

Each ``figXX`` function returns the figure's data as plain text rows —
the same series the pytest benches assert on, without the assertions.
"""

from __future__ import annotations

from repro.harness.accuracy import compression_study, percent_diff_series
from repro.harness.experiments import get_benchmark
from repro.harness.heatmap import DEFAULT_QUALITIES, fig3_heatmap
from repro.harness.report import format_series
from repro.harness.timing import CF_SWEEP, measure, timing_sweep

ACCEL = ("cs2", "sn30", "groq", "ipu")
RESOLUTIONS = (32, 64, 128, 256, 512)
BATCHES = (10, 50, 100, 500, 1000, 2000, 5000)


def _render_points(points, title: str, x_attr: str) -> str:
    lines = [title, f"{'platform':>8} {x_attr:>6} {'cf':>3} {'ratio':>6} {'time':>12} {'GB/s':>8}"]
    for p in points:
        x = getattr(p, x_attr)
        if p.status == "ok":
            lines.append(
                f"{p.platform:>8} {x:>6} {p.cf:>3} {p.ratio:>6.2f} "
                f"{p.seconds * 1e3:10.3f}ms {p.throughput_gbps:8.2f}"
            )
        else:
            lines.append(
                f"{p.platform:>8} {x:>6} {p.cf:>3} {p.ratio:>6.2f} "
                f"  COMPILE-ERR ({p.reason})"
            )
    return "\n".join(lines)


def fig03(n_images: int = 200, resolution: int = 32) -> str:
    heatmap = fig3_heatmap(DEFAULT_QUALITIES, n_images=n_images, resolution=resolution)
    lines = ["Fig. 3: nonzero-coefficient fraction per 8x8 position"]
    for ch in range(heatmap.shape[0]):
        for qi, q in enumerate(DEFAULT_QUALITIES):
            lines.append(f"\nchannel {ch}, quality {q}:")
            for row in heatmap[ch, qi]:
                lines.append("  " + " ".join(f"{v:5.2f}" for v in row))
    return "\n".join(lines)


def _accuracy_fig(benchmarks, *, scale: str, epochs: int | None, cfs, train_loss: bool) -> str:
    chunks = []
    for name in benchmarks:
        spec = get_benchmark(name, scale)
        study = compression_study(spec, cfs=cfs, epochs=epochs)
        if train_loss:
            series = {label: h.train_loss for label, h in study.items()}
            title = f"{name}: training loss per epoch"
        else:
            series = percent_diff_series(study, use_accuracy=spec.classification)
            metric = "test accuracy" if spec.classification else "test loss"
            title = f"{name}: {metric} % difference vs baseline"
        chunks.append(format_series(series, title, fmt="{:9.3f}"))
    return "\n\n".join(chunks)


def fig07(scale: str = "tiny", epochs: int | None = None, cfs=(2, 4, 6), benchmarks=None) -> str:
    names = benchmarks or ("classify", "em_denoise", "optical_damage", "slstr_cloud")
    return _accuracy_fig(names, scale=scale, epochs=epochs, cfs=cfs, train_loss=True)


def fig08(scale: str = "tiny", epochs: int | None = None, cfs=(2, 4, 6), benchmarks=None) -> str:
    names = benchmarks or ("classify", "em_denoise", "optical_damage", "slstr_cloud")
    return _accuracy_fig(names, scale=scale, epochs=epochs, cfs=cfs, train_loss=False)


def fig10(platforms=ACCEL) -> str:
    points = timing_sweep(platforms, resolutions=RESOLUTIONS, cfs=CF_SWEEP, direction="compress")
    return _render_points(points, "Fig. 10: compression time vs resolution", "resolution")


def fig11(platforms=ACCEL) -> str:
    points = timing_sweep(platforms, resolutions=RESOLUTIONS, cfs=CF_SWEEP, direction="decompress")
    return _render_points(points, "Fig. 11: decompression time vs resolution", "resolution")


def fig12(platforms=ACCEL) -> str:
    points = timing_sweep(
        platforms, resolutions=(64,), batches=BATCHES, cfs=CF_SWEEP, direction="compress"
    )
    return _render_points(points, "Fig. 12: compression time vs batch size", "batch")


def fig13(platforms=ACCEL) -> str:
    points = timing_sweep(
        platforms, resolutions=(64,), batches=BATCHES, cfs=CF_SWEEP, direction="decompress"
    )
    return _render_points(points, "Fig. 13: decompression time vs batch size", "batch")


def fig14() -> str:
    points = timing_sweep(["a100"], resolutions=RESOLUTIONS, cfs=CF_SWEEP, direction="decompress")
    return _render_points(points, "Fig. 14: A100 decompression time vs resolution", "resolution")


def fig15() -> str:
    lines = ["Fig. 15: partial serialization s=2 decompression, 100x3x512x512"]
    for platform in ("sn30", "ipu"):
        for cf in reversed(CF_SWEEP):
            ps = measure(platform, resolution=512, cf=cf, direction="decompress", method="ps", s=2)
            native = measure(platform, resolution=256, cf=cf, direction="decompress")
            lines.append(
                f"  {platform} cf={cf} ratio={ps.ratio:5.2f}: "
                f"{ps.throughput_gbps:6.2f} GB/s "
                f"(slowdown vs 256 native: {ps.seconds / native.seconds:4.2f}x)"
            )
    return "\n".join(lines)


def fig16(scale: str = "tiny", epochs: int | None = None) -> str:
    from repro.core import make_compressor
    from repro.harness.accuracy import run_benchmark

    chunks = []
    for name in ("classify", "em_denoise"):
        spec = get_benchmark(name, scale)
        base = run_benchmark(spec, None, epochs=epochs)
        series = {"base": base.train_loss}
        for cf in (2, 7):
            comp = make_compressor(spec.resolution, method="sg", cf=cf)
            hist = run_benchmark(spec, comp, epochs=epochs)
            series[f"sg {comp.ratio:.2f}"] = hist.train_loss
        chunks.append(format_series(series, f"{name}: SG training loss", fmt="{:9.4f}"))
    return "\n\n".join(chunks)


def fig17() -> str:
    lines = ["Fig. 17: SG ('opt') vs DC ('dct') IPU decompression, 100x3x32x32"]
    for cf in CF_SWEEP:
        dct = measure("ipu", resolution=32, cf=cf, direction="decompress", method="dc")
        opt = measure("ipu", resolution=32, cf=cf, direction="decompress", method="sg")
        lines.append(
            f"  cf={cf}: dct {dct.throughput_gbps:6.2f} GB/s (CR {dct.ratio:5.2f})   "
            f"opt {opt.throughput_gbps:6.2f} GB/s (CR {opt.ratio:5.2f})"
        )
    return "\n".join(lines)


FIGURES = {
    "fig03": fig03,
    "fig07": fig07,
    "fig08": fig08,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
}
