"""Tables 1-3: accelerator specs, dataset inventory, benchmark configs."""

from repro.harness import format_table, table1, table2, table3

from benchmarks.conftest import write_result


def test_table1(benchmark):
    rows = benchmark(table1)
    write_result("table1", format_table(rows, "Table 1: Accelerator specifications"))
    assert [r["name"] for r in rows] == ["cs2", "sn30", "groq", "ipu"]
    assert rows[0]["CUs"] == 850_000


def test_table2(benchmark):
    rows = benchmark(table2)
    write_result("table2", format_table(rows, "Table 2: Image datasets"))
    assert len(rows) == 4


def test_table3(benchmark):
    rows = benchmark(lambda: table3("paper"))
    write_result("table3", format_table(rows, "Table 3: Evaluation benchmarks"))
    assert [r["Test"] for r in rows] == [
        "classify",
        "em_denoise",
        "optical_damage",
        "slstr_cloud",
    ]
