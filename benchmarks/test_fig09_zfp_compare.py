"""Fig. 9: DCT+Chop vs ZFP at matched compression ratios (CPU comparison).

The paper compares on classify and em_denoise: ZFP generally reaches a
given accuracy at a higher ratio on classify, while on em_denoise both
compressors track each other and both can improve on the baseline.
DCT+Chop histories are shared with the Fig. 7/8 study; only the ZFP runs
are trained here.  Timed kernel: one ZFP roundtrip of a training batch.
"""

import numpy as np
import pytest

from repro.baselines import ZFPCompressor
from repro.core import compression_ratio
from repro.harness import format_series
from repro.harness.accuracy import run_benchmark

from benchmarks.conftest import CFS, EPOCHS, SCALE, write_result

# Match ZFP rates to the DC sweep's ratios: CR = 32/rate = 64/CF^2.
ZFP_RATES = tuple(32.0 / compression_ratio(cf) for cf in CFS)


@pytest.mark.parametrize("name", ["classify", "em_denoise"])
def test_fig9_zfp_compare(benchmark, studies, name):
    spec = studies.spec(name)
    zfp = ZFPCompressor(rate=ZFP_RATES[0])
    batch = np.zeros((spec.batch_size, *spec.sample_shape), dtype=np.float32)
    benchmark(lambda: zfp.roundtrip(batch))

    study = studies.study(name)
    series = {}
    use_acc = spec.classification
    base = study["base"]
    base_vals = base.test_accuracy if use_acc else base.test_loss

    def pct(vals):
        return [100.0 * (v - b) / abs(b) for v, b in zip(vals, base_vals)]

    for label, hist in study.items():
        if label == "base":
            continue
        series[f"dct {label}"] = pct(hist.test_accuracy if use_acc else hist.test_loss)
    for rate in ZFP_RATES:
        hist = run_benchmark(spec, ZFPCompressor(rate=rate), seed=0, epochs=EPOCHS)
        series[f"zfp {32.0 / rate:.2f}"] = pct(
            hist.test_accuracy if use_acc else hist.test_loss
        )

    metric = "test accuracy" if use_acc else "test loss"
    write_result(
        f"fig09_zfp_{name}",
        format_series(
            series,
            f"Fig. 9 ({name}, scale={SCALE}): {metric} % diff vs baseline, DCT+Chop vs ZFP",
            fmt="{:9.2f}",
        ),
    )

    for label, vals in series.items():
        assert np.isfinite(vals).all(), label

    if name == "classify":
        # Paper: ZFP achieves higher ratio for comparable accuracy — at the
        # highest shared ratio, ZFP's accuracy drop is no worse than
        # DCT+Chop's by a wide margin.
        top = f"{compression_ratio(min(CFS)):.2f}"
        assert series[f"zfp {top}"][-1] >= series[f"dct {top}"][-1] - 15.0
