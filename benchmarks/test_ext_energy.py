"""Extension: bytes-per-joule comparison the paper leaves open.

Section 4.2.2: "power differences are not accounted for in this
evaluation. Thus, we cannot directly compare performance differences
between accelerators."  With nameplate board powers attached to the
timing model, the ranking inverts: the 20 kW CS-2 wins raw throughput
but the sub-kW SN30/IPU win efficiency.
"""

import numpy as np

from repro.accel import compile_program, estimate_energy
from repro.core import DCTChopCompressor

from benchmarks.conftest import write_result

PLATFORMS = ("cs2", "sn30", "groq", "ipu", "a100")
PAYLOAD = 100 * 3 * 256 * 256 * 4


def test_ext_energy_efficiency(benchmark):
    comp = DCTChopCompressor(256, cf=4)
    x = np.zeros((100, 3, 256, 256), np.float32)
    prog = compile_program(comp.compress, x, "sn30")
    benchmark(lambda: estimate_energy(prog.cost, "sn30"))

    lines = [
        "Extension: compression energy at 256x256, cf=4 (modelled)",
        f"{'platform':>8} {'time':>10} {'power':>9} {'energy':>10} {'MB/J':>8}",
    ]
    results = {}
    for platform in PLATFORMS:
        p = compile_program(comp.compress, x, platform)
        est = estimate_energy(p.cost, platform)
        eff = est.bytes_per_joule(PAYLOAD) / 1e6
        results[platform] = eff
        lines.append(
            f"{platform:>8} {est.seconds * 1e3:8.2f}ms {est.board_watts:7.0f}W "
            f"{est.joules:9.3f}J {eff:8.2f}"
        )
    write_result("ext_energy", "\n".join(lines))

    # Throughput ranking has CS-2 on top; efficiency ranking does not.
    assert results["sn30"] > results["cs2"]
    assert results["ipu"] > results["cs2"]
    assert results["a100"] > results["cs2"]
    # GroqChip's long runtimes hurt it on energy too.
    assert results["groq"] < results["sn30"]
