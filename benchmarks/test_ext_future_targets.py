"""Extension: the paper's Section 6 future-work targets, measured.

Weight, activation, and gradient compression against the same DCT+Chop
core: achieved ratios and the accuracy/convergence cost of each, at
miniature scale.
"""

import numpy as np

import repro.nn as nn
from repro.data.loader import DataLoader, Dataset
from repro.targets import (
    DataParallelSimulator,
    compress_activations,
    compress_state_dict,
    state_dict_ratio,
)
from repro.tensor import Tensor
from repro.tensor.random import Generator

from benchmarks.conftest import write_result


class LinearTask(Dataset):
    def __init__(self, n=64, seed=0):
        rng = np.random.default_rng(seed)
        self.x = rng.standard_normal((n, 16)).astype(np.float32)
        self.y = self.x @ rng.standard_normal((16, 4)).astype(np.float32)

    def __len__(self):
        return len(self.x)

    def __getitem__(self, i):
        return self.x[i], self.y[i]


def test_ext_weight_compression(benchmark):
    model = nn.DeepEncoderDecoder(base_channels=8, depth=2, gen=Generator(0))
    state = model.state_dict()
    benchmark(lambda: compress_state_dict(state, cf=6))

    lines = ["Extension: weight compression (encoder-decoder state dict)"]
    ratios = {}
    for cf in (7, 6, 4, 3):
        packed = compress_state_dict(state, cf=cf)
        ratios[cf] = state_dict_ratio(state, packed)
        lines.append(f"  cf={cf}: {ratios[cf]:5.2f}x smaller")
    write_result("ext_weights", "\n".join(lines))

    assert ratios[3] > ratios[6] > ratios[7] > 1.0


def test_ext_activation_compression(benchmark):
    model = nn.DeepEncoderDecoder(base_channels=4, depth=2, gen=Generator(0))
    wrappers = compress_activations(model, cf=6)
    x = Tensor(np.random.default_rng(0).standard_normal((4, 1, 16, 16)).astype(np.float32))
    benchmark(lambda: model(x))

    ratio = wrappers[0].observed_ratio
    write_result(
        "ext_activations",
        "Extension: activation compression\n"
        f"  {len(wrappers)} conv layers wrapped, activation storage {ratio:.2f}x smaller",
    )
    assert ratio > 1.3


def test_ext_gradient_compression(benchmark):
    loader = DataLoader(LinearTask(), 16, shuffle=True, gen=Generator(0))

    def run(cf):
        model = nn.Linear(16, 4, gen=Generator(0))
        sim = DataParallelSimulator(
            model, nn.MSELoss(), nn.Adam(model.parameters(), lr=0.05),
            world_size=4, gradient_cf=cf,
        )
        first = sim.train_epoch(loader)
        for _ in range(8):
            last = sim.train_epoch(loader)
        return first, last, sim.log

    base_first, base_last, base_log = run(None)
    comp_first, comp_last, comp_log = run(4)

    model = nn.Linear(16, 4, gen=Generator(0))
    sim = DataParallelSimulator(
        model, nn.MSELoss(), nn.Adam(model.parameters(), lr=0.05),
        world_size=4, gradient_cf=4,
    )
    x = np.stack([LinearTask()[i][0] for i in range(16)])
    y = np.stack([LinearTask()[i][1] for i in range(16)])
    benchmark(lambda: sim.step(x, y))

    write_result(
        "ext_gradients",
        "Extension: gradient compression in 4-worker data parallel\n"
        f"  uncompressed: loss {base_first:7.3f} -> {base_last:7.3f}, traffic 1.00x\n"
        f"  cf=4 chop:    loss {comp_first:7.3f} -> {comp_last:7.3f}, "
        f"traffic saved {comp_log.savings_ratio:4.2f}x",
    )
    # Both converge; compression saves real bytes.
    assert base_last < base_first * 0.5
    assert comp_last < comp_first * 0.5
    assert comp_log.savings_ratio > 1.5
