"""Ablation: precomputed LHS/RHS (the paper's design) vs computing the
mask and transform separately at runtime.

The paper folds ``M @ T_L`` into a single compile-time operand so each
direction is exactly two matmuls.  The unfused alternative —
``M @ (T_L @ A @ T_L^T) @ M^T`` — needs four matmuls with larger
intermediates.  Both must agree numerically; the bench records the FLOPs
gap and times the fused kernel.
"""

import numpy as np

from repro.core import DCTChopCompressor
from repro.core.dct import block_diagonal_dct
from repro.core.mask import chop_mask

from benchmarks.conftest import write_result

RES = 128
CF = 4


def unfused_compress(x, t_l, mask):
    full = t_l @ x @ t_l.T
    return mask @ full @ mask.T


def test_ablation_fused_operands(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((32, 3, RES, RES)).astype(np.float32)
    comp = DCTChopCompressor(RES, cf=CF)
    fused = benchmark(lambda: comp.compress(x))

    t_l = block_diagonal_dct(RES)
    mask = chop_mask(RES, CF)
    reference = unfused_compress(x, t_l, mask)
    np.testing.assert_allclose(fused.numpy(), reference, atol=1e-3)

    # FLOPs comparison (per plane): fused = 2 matmuls with the chopped
    # m=cf*n/8 dimension; unfused = 2 full n^3 matmuls + 2 masked ones.
    n, m = RES, CF * RES // 8
    fused_flops = 2 * m * n * n + 2 * m * n * m
    unfused_flops = 2 * n * n * n + 2 * n * n * n + 2 * m * n * n + 2 * m * n * m
    lines = [
        "Ablation: precomputed (fused) operands vs runtime mask+transform",
        f"  fused:   2 matmuls, {fused_flops / 1e6:8.2f} MFLOPs/plane",
        f"  unfused: 4 matmuls, {unfused_flops / 1e6:8.2f} MFLOPs/plane "
        f"({unfused_flops / fused_flops:4.2f}x)",
        "  outputs agree to 1e-3 (offline folding is exact).",
    ]
    write_result("ablation_fused", "\n".join(lines))

    assert unfused_flops / fused_flops > 2.0
