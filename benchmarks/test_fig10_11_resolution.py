"""Figs. 10/11: compression/decompression time vs resolution, 4 accelerators.

100 samples x 3 channels, resolutions 32..512, CF 2..7.  Reproduces the
compile failures at 512x512 on SN30 and GroqChip as data points, and the
paper's structural findings: time linear in pixel count, decompression
faster than compression, CF-spread wider for decompression.

Timed kernel: the numerical compress of the 64x64 workload (real NumPy
matmuls); reported times come from the platform model.
"""

import numpy as np
import pytest

from repro.core import make_compressor
from repro.harness import CF_SWEEP, timing_sweep

from benchmarks.conftest import write_result

PLATFORMS = ("cs2", "sn30", "groq", "ipu")
RESOLUTIONS = (32, 64, 128, 256, 512)


def _render(points, title):
    lines = [title, f"{'platform':>8} {'res':>5} {'cf':>3} {'ratio':>6} {'time':>12} {'GB/s':>8}"]
    for p in points:
        time_s = f"{p.seconds * 1e3:10.3f}ms" if p.status == "ok" else "  COMPILE-ERR"
        gbps = f"{p.throughput_gbps:8.2f}" if p.status == "ok" else f"  ({p.reason})"
        lines.append(f"{p.platform:>8} {p.resolution:>5} {p.cf:>3} {p.ratio:>6.2f} {time_s} {gbps}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def sweeps():
    return {
        direction: timing_sweep(
            PLATFORMS, resolutions=RESOLUTIONS, cfs=CF_SWEEP, direction=direction
        )
        for direction in ("compress", "decompress")
    }


def test_fig10_compression_time(benchmark, sweeps):
    comp = make_compressor(64, cf=4)
    x = np.random.default_rng(0).standard_normal((100, 3, 64, 64)).astype(np.float32)
    benchmark(lambda: comp.compress(x))

    points = sweeps["compress"]
    write_result("fig10_compress_vs_resolution", _render(points, "Fig. 10: compression time vs resolution"))

    by = {(p.platform, p.resolution, p.cf): p for p in points}
    # Compile failures exactly where the paper reports them.
    for cf in CF_SWEEP:
        assert by[("sn30", 512, cf)].status == "compile_error"
        assert by[("groq", 512, cf)].status == "compile_error"
        assert by[("cs2", 512, cf)].status == "ok"
        assert by[("ipu", 512, cf)].status == "ok"
    # Time grows with resolution on every platform.  The SN30 is allowed a
    # bounded dip: its small-tensor placement penalty switches off once the
    # compressed plane exceeds a PMU-friendly size, which can locally beat
    # the transfer growth (the paper's CR-16-is-slower quirk, seen from the
    # resolution axis).
    for platform in PLATFORMS:
        tolerance = 0.75 if platform == "sn30" else 1.0
        for cf in (2, 7):
            times = [
                by[(platform, r, cf)].seconds
                for r in RESOLUTIONS
                if by[(platform, r, cf)].status == "ok"
            ]
            assert all(b > a * tolerance for a, b in zip(times, times[1:]))
            assert times[-1] > times[0]
    # Platform ordering at 256x256: CS-2 fastest, GroqChip slowest.
    t = {p: by[(p, 256, 4)].seconds for p in PLATFORMS}
    assert t["cs2"] < t["sn30"] < t["ipu"] < t["groq"]


def test_fig11_decompression_time(benchmark, sweeps):
    comp = make_compressor(64, cf=4)
    y = np.random.default_rng(0).standard_normal((100, 3, 32, 32)).astype(np.float32)
    benchmark(lambda: comp.decompress(y))

    points = sweeps["decompress"]
    write_result("fig11_decompress_vs_resolution", _render(points, "Fig. 11: decompression time vs resolution"))

    by = {(p.platform, p.resolution, p.cf): p for p in points}
    comp_by = {(p.platform, p.resolution, p.cf): p for p in sweeps["compress"]}
    for platform in PLATFORMS:
        # Decompression faster than compression at every OK point.
        for r in RESOLUTIONS:
            for cf in CF_SWEEP:
                d, c = by[(platform, r, cf)], comp_by[(platform, r, cf)]
                if d.status == c.status == "ok":
                    assert d.seconds <= c.seconds + 1e-12
    # Wider CF spread for decompression than compression (CS-2 and IPU).
    for platform in ("cs2", "ipu"):
        d_spread = by[(platform, 256, 2)].seconds / by[(platform, 256, 7)].seconds
        c_spread = comp_by[(platform, 256, 2)].seconds / comp_by[(platform, 256, 7)].seconds
        assert d_spread < c_spread  # cf2 decompress much faster -> smaller ratio
    # IPU decompression at CR16 reaches >12 GB/s; CF7 modest (~2 GB/s).
    assert by[("ipu", 256, 2)].throughput_gbps > 12.0
    assert by[("ipu", 256, 7)].throughput_gbps < 3.0
    # SN30 quirk: CR 16 slower than CR 4 (small-tensor overhead).
    assert by[("sn30", 256, 2)].seconds > by[("sn30", 256, 4)].seconds
