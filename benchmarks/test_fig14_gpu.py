"""Fig. 14: A100 GPU decompression time vs resolution.

Paper: ~2.5 GB/s with little variation across compression ratios; the
CS-2 and SN30 beat the A100, the single GroqChip and IPU do not (at
mid compression ratios).
"""

import numpy as np

from repro.core import make_compressor
from repro.harness import CF_SWEEP, measure, timing_sweep

from benchmarks.conftest import write_result

RESOLUTIONS = (32, 64, 128, 256, 512)


def test_fig14_a100_decompression(benchmark):
    comp = make_compressor(64, cf=4)
    y = np.random.default_rng(0).standard_normal((100, 3, 32, 32)).astype(np.float32)
    benchmark(lambda: comp.decompress(y))

    points = timing_sweep(
        ["a100"], resolutions=RESOLUTIONS, cfs=CF_SWEEP, direction="decompress"
    )
    lines = ["Fig. 14: A100 decompression time vs resolution"]
    for p in points:
        lines.append(
            f"  res={p.resolution:>4} cf={p.cf} ratio={p.ratio:5.2f} "
            f"time={p.seconds * 1e3:9.3f}ms throughput={p.throughput_gbps:6.2f} GB/s"
        )
    write_result("fig14_a100_decompress", "\n".join(lines))

    by = {(p.resolution, p.cf): p for p in points}
    # All points compile (40 GB HBM).
    assert all(p.status == "ok" for p in points)
    # ~2.5 GB/s with little CF variation at 256.
    vals = [by[(256, cf)].throughput_gbps for cf in CF_SWEEP]
    assert 1.5 < min(vals) and max(vals) < 4.0
    assert max(vals) / min(vals) < 2.0
    # Cross-platform comparison (paper's "Comparison with GPU").
    a100 = by[(256, 4)].throughput_gbps
    cs2 = measure("cs2", resolution=256, cf=4, direction="decompress").throughput_gbps
    sn30 = measure("sn30", resolution=256, cf=4, direction="decompress").throughput_gbps
    assert cs2 > a100 and sn30 > a100
    # A single GroqChip/IPU loses to the A100 on compression throughput
    # (they "rely on scalability to outperform GPU").
    a100_c = measure("a100", resolution=256, cf=4, direction="compress").throughput_gbps
    groq_c = measure("groq", resolution=256, cf=4, direction="compress").throughput_gbps
    ipu_c = measure("ipu", resolution=256, cf=4, direction="compress").throughput_gbps
    assert groq_c < a100_c and ipu_c < a100_c
