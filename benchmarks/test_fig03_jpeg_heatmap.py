"""Fig. 3: nonzero-DCT-coefficient heatmap after JPEG quantization.

Regenerates the per-(channel, quality) 8x8 nonzero-fraction maps over
synthetic CIFAR10 images; the timed kernel is one quantization pass.
"""

import numpy as np

from repro.baselines import JPEGQuantizer
from repro.data import SyntheticCIFAR10
from repro.harness import fig3_heatmap

from benchmarks.conftest import write_result

QUALITIES = (5, 10, 25, 50, 75, 95)
N_IMAGES = 200  # paper uses 1000; scaled for bench runtime


def _render(heatmap: np.ndarray) -> str:
    lines = ["Fig. 3: fraction of blocks with nonzero coefficient (rows=i, cols=j)"]
    for ch in range(heatmap.shape[0]):
        for qi, q in enumerate(QUALITIES):
            lines.append(f"\nchannel {ch}, quality {q}:")
            for row in heatmap[ch, qi]:
                lines.append("  " + " ".join(f"{v:5.2f}" for v in row))
    return "\n".join(lines)


def test_fig3_heatmap(benchmark):
    ds = SyntheticCIFAR10(n=32, resolution=32, seed=0)
    images = np.stack([ds[i][0] for i in range(32)])
    images = (images - images.min()) / (images.max() - images.min()) * 255 - 128
    quantizer = JPEGQuantizer(25)
    benchmark(lambda: quantizer.nonzero_fraction(images[:, 0]))

    heatmap = fig3_heatmap(QUALITIES, n_images=N_IMAGES, resolution=32, seed=0)
    write_result("fig03_heatmap", _render(heatmap))

    # Shape checks mirroring the paper's reading of the figure:
    # (1) more zeros at lower quality;
    means = heatmap.mean(axis=(0, 2, 3))
    assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))
    # (2) nonzeros concentrate in the low-frequency corner;
    low_q = heatmap[:, 0]
    assert low_q[:, :4, :4].sum() > 0.9 * low_q.sum()
    # (3) under meaningful quantization (q <= 25) the densest position is
    # near DC; at q >= 75 nearly every position survives, so the argmax is
    # uninformative (ties at 1.0).
    for ch in range(3):
        for qi, q in enumerate(QUALITIES):
            if q <= 25:
                i, j = np.unravel_index(heatmap[ch, qi].argmax(), (8, 8))
                assert i + j <= 2
