"""Ablation: RGB (paper's choice) vs YCbCr color transform before DCT+Chop.

The paper keeps RGB "to keep compression fast and lightweight" (Section
3.2).  This bench quantifies the trade: reconstruction quality at matched
ratios with and without the JPEG color stage, plus the conversion's own
cost (two extra channel-mixing matmuls per direction).
"""

import numpy as np

from repro.core import DCTChopCompressor, psnr
from repro.core.colorspace import rgb_to_ycbcr, ycbcr_to_rgb
from repro.data import SyntheticCIFAR10

from benchmarks.conftest import write_result


def _batch(n=32, res=32):
    ds = SyntheticCIFAR10(n=n, resolution=res, seed=0)
    x = np.stack([ds[i][0] for i in range(n)])
    # Map to a pixel-like positive range so luminance dominance is realistic.
    return (x - x.min()) / (x.max() - x.min())


def test_ablation_colorspace(benchmark):
    batch = _batch()
    benchmark(lambda: ycbcr_to_rgb(rgb_to_ycbcr(batch)))

    lines = ["Ablation: RGB vs YCbCr before DCT+Chop (PSNR dB, 32 images)"]
    results = {}
    for cf in (2, 4, 7):
        comp = DCTChopCompressor(32, cf=cf)
        rgb_rec = comp.roundtrip(batch).numpy()
        ycc = rgb_to_ycbcr(batch)
        ycc_rec = ycbcr_to_rgb(comp.roundtrip(ycc).numpy())
        results[cf] = (psnr(batch, rgb_rec), psnr(batch, ycc_rec))
        lines.append(
            f"  cf={cf} (CR {comp.ratio:5.2f}): rgb {results[cf][0]:6.2f}  "
            f"ycbcr {results[cf][1]:6.2f}"
        )
    lines.append(
        "  (YCbCr adds 2 channel-mix matmuls per direction; the paper skips "
        "it for speed/portability)"
    )
    write_result("ablation_colorspace", "\n".join(lines))

    for cf, (rgb_q, ycc_q) in results.items():
        assert np.isfinite(rgb_q) and np.isfinite(ycc_q)
        # The orthonormal color rotation cannot change quality drastically:
        # both pipelines land within a few dB of each other.
        assert abs(rgb_q - ycc_q) < 6.0
    # Quality improves with CF for both pipelines.
    assert results[2][0] < results[4][0] < results[7][0]
    assert results[2][1] < results[4][1] < results[7][1]
