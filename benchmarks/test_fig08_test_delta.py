"""Fig. 8: per-epoch test loss/accuracy percent difference vs baseline.

The paper's reading: em_denoise and slstr_cloud stay near baseline (and
em_denoise can *improve* under compression); classify stratifies by
compression ratio with the highest CR clearly worst.
"""

import numpy as np
import pytest

from repro.core import compression_ratio, make_compressor
from repro.harness import BENCHMARKS, format_series, percent_diff_series

from benchmarks.conftest import CFS, SCALE, write_result


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig8_test_delta(benchmark, studies, name):
    spec = studies.spec(name)
    comp = make_compressor(spec.resolution, cf=min(CFS))
    batch = np.zeros((spec.batch_size, *spec.sample_shape), dtype=np.float32)
    benchmark(lambda: comp.decompress(comp.compress(batch)))

    study = studies.study(name)
    use_acc = spec.classification
    series = percent_diff_series(study, use_accuracy=use_acc)
    metric = "test accuracy" if use_acc else "test loss"
    write_result(
        f"fig08_test_delta_{name}",
        format_series(
            series,
            f"Fig. 8 ({name}, scale={SCALE}): {metric} % difference vs baseline",
            fmt="{:9.2f}",
        ),
    )

    for label, vals in series.items():
        assert np.isfinite(vals).all(), f"non-finite delta in {label}"

    if name == "em_denoise":
        # Paper: compression can *improve* em_denoise (negative delta) —
        # chopping high-frequency coefficients denoises the input.
        finals = [vals[-1] for vals in series.values()]
        assert min(finals) < 0.5, finals

    if name == "classify":
        # Highest compression ratio hurts accuracy the most at the end.
        final = {label: vals[-1] for label, vals in series.items()}
        worst_label = f"{compression_ratio(min(CFS)):.2f}"
        best_label = f"{compression_ratio(max(CFS)):.2f}"
        assert final[worst_label] <= final[best_label] + 1e-6
        # CR16 clearly degrades accuracy (negative % difference).
        assert final[worst_label] < 0
