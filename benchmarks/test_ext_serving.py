"""Extension: serving-path performance (plan cache + dynamic batching).

Records the serving-perf trajectory future PRs regress against:

* plan-cache cold vs. warm — how many compiles a trace replay needs the
  first time, and that a warm fleet needs none;
* batch=1 sequential vs. dynamic batching — total modelled device time
  for the same traffic.
"""

import time

from repro.serve import CompiledPlanCache, CompressionService, synthetic_trace

from benchmarks.conftest import write_result

N_REQUESTS = 1000
PLATFORMS = ("ipu", "a100")


def _trace():
    return synthetic_trace(N_REQUESTS, seed=0)


def _replay(cache, *, max_batch=8, max_wait=0.02, platforms=PLATFORMS):
    service = CompressionService(
        platforms, max_batch=max_batch, max_wait=max_wait, cache=cache
    )
    t0 = time.perf_counter()
    _, stats = service.process(_trace())
    return stats, time.perf_counter() - t0


def test_ext_serving_cache_and_batching(benchmark):
    cache = CompiledPlanCache(capacity=64)
    cold, cold_wall = _replay(cache)
    cold_misses = cache.misses
    warm, warm_wall = _replay(cache)
    warm_misses = cache.misses - cold_misses

    seq_stats, _ = _replay(CompiledPlanCache(capacity=64), max_batch=1, max_wait=0.0,
                           platforms=(PLATFORMS[0],))

    benchmark(lambda: _replay(cache))  # steady-state (warm) replay

    speedup = seq_stats.busy_s / warm.busy_s if warm.busy_s else 0.0
    lines = [
        f"Extension: serving path, {N_REQUESTS}-request trace on {','.join(PLATFORMS)}",
        f"  cold replay: {cold_misses} compiles, {cold.cache.hit_rate:.1%} hit rate, "
        f"wall {cold_wall * 1e3:.0f} ms",
        f"  warm replay: {warm_misses} compiles, "
        f"wall {warm_wall * 1e3:.0f} ms",
        f"  batch=1 sequential: {seq_stats.busy_s * 1e3:8.3f} ms modelled device time "
        f"({seq_stats.n_ok / seq_stats.busy_s:,.0f} req/s)",
        f"  dynamic batching:   {warm.busy_s * 1e3:8.3f} ms modelled device time "
        f"({warm.n_ok / warm.busy_s:,.0f} req/s, mean batch {warm.mean_batch_size:.2f})",
        f"  -> batching reduces modelled device time {speedup:.2f}x",
    ]
    write_result("ext_serving", "\n".join(lines))

    # Cold pays the compiles once; a warm fleet re-traces nothing.
    assert cold_misses > 0
    assert warm_misses == 0
    assert cold.cache_hit_rate >= 0.9
    # No dropped requests either way, and batching must win on modelled time.
    assert cold.n_failed == warm.n_failed == seq_stats.n_failed == 0
    assert warm.busy_s < seq_stats.busy_s
