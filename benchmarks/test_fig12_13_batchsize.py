"""Figs. 12/13: compression/decompression time vs batch size (64x64x3).

Batch sizes 10..5000, CF 2..7.  Reproduces the GroqChip compile failure
beyond batch 1000, CS-2's flat-until-2000 curve, and the linear scaling
everywhere else.
"""

import numpy as np
import pytest

from repro.core import make_compressor
from repro.harness import CF_SWEEP, timing_sweep

from benchmarks.conftest import write_result

PLATFORMS = ("cs2", "sn30", "groq", "ipu")
BATCHES = (10, 50, 100, 500, 1000, 2000, 5000)
RES = 64


def _render(points, title):
    lines = [title, f"{'platform':>8} {'batch':>6} {'cf':>3} {'time':>12}"]
    for p in points:
        time_s = f"{p.seconds * 1e3:10.3f}ms" if p.status == "ok" else "  COMPILE-ERR"
        lines.append(f"{p.platform:>8} {p.batch:>6} {p.cf:>3} {time_s}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def sweeps():
    return {
        direction: timing_sweep(
            PLATFORMS,
            resolutions=(RES,),
            batches=BATCHES,
            cfs=CF_SWEEP,
            direction=direction,
        )
        for direction in ("compress", "decompress")
    }


def test_fig12_compression_vs_batch(benchmark, sweeps):
    comp = make_compressor(RES, cf=4)
    x = np.random.default_rng(0).standard_normal((100, 3, RES, RES)).astype(np.float32)
    benchmark(lambda: comp.compress(x))

    points = sweeps["compress"]
    write_result("fig12_compress_vs_batch", _render(points, "Fig. 12: compression time vs batch size"))

    by = {(p.platform, p.batch, p.cf): p for p in points}
    # GroqChip: OK through 1000, compile error beyond.
    for cf in CF_SWEEP:
        assert by[("groq", 1000, cf)].status == "ok"
        assert by[("groq", 2000, cf)].status == "compile_error"
        assert by[("groq", 5000, cf)].status == "compile_error"
    # Everyone else handles 5000.
    for platform in ("cs2", "sn30", "ipu"):
        assert by[(platform, 5000, 4)].status == "ok"
    # CS-2 nearly flat to 2000, then grows.
    t = {b: by[("cs2", b, 4)].seconds for b in BATCHES}
    assert t[2000] / t[10] < 3.0
    assert t[5000] / t[2000] > 1.5
    # SN30/IPU: linear growth — 10x batch => ~10x time at large batches.
    for platform in ("sn30", "ipu"):
        ratio = by[(platform, 5000, 4)].seconds / by[(platform, 500, 4)].seconds
        assert 6.0 < ratio < 12.0


def test_fig13_decompression_vs_batch(benchmark, sweeps):
    comp = make_compressor(RES, cf=4)
    y = np.random.default_rng(0).standard_normal((100, 3, RES // 2, RES // 2)).astype(np.float32)
    benchmark(lambda: comp.decompress(y))

    points = sweeps["decompress"]
    write_result("fig13_decompress_vs_batch", _render(points, "Fig. 13: decompression time vs batch size"))

    by = {(p.platform, p.batch, p.cf): p for p in points}
    comp_by = {(p.platform, p.batch, p.cf): p for p in sweeps["compress"]}
    # Decompression <= compression everywhere both compiled.
    for key, d in by.items():
        c = comp_by[key]
        if d.status == c.status == "ok":
            assert d.seconds <= c.seconds + 1e-12
    # Batch scaling is monotone for every platform/cf.
    for platform in PLATFORMS:
        for cf in (2, 7):
            times = [
                by[(platform, b, cf)].seconds
                for b in BATCHES
                if by[(platform, b, cf)].status == "ok"
            ]
            assert all(a <= b for a, b in zip(times, times[1:]))
