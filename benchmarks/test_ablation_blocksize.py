"""Ablation: DCT block size 4 / 8 / 16 at a fixed 4x compression ratio.

The paper fixes 8x8 ("an appropriate size for balancing computational
complexity ... with keeping enough local information").  Two findings:

* With the paper's *dense* two-matmul formulation, per-plane FLOPs at a
  fixed ratio are block-size invariant — the operand shapes depend only
  on ``cf/block = 1/2``, so the complexity argument only bites for an
  implementation that exploits the block-diagonal structure (per-block
  batched matmuls cost ``~1.5 n^2 b`` FLOPs, linear in the block size).
* Quality on smooth data improves with larger blocks (better energy
  compaction); 8 captures most of the gain.
"""

import numpy as np

from repro.core import DCTChopCompressor, compression_flops, psnr
from repro.data.synthetic import correlated_field

from benchmarks.conftest import write_result


def blockwise_flops(n: int, block: int, cf: int) -> float:
    """Per-plane FLOPs when the block-diagonal structure is exploited:
    (n/b)^2 blocks, each needing 2*cf*b^2 + 2*cf^2*b multiply-adds."""
    return (n / block) ** 2 * (2 * cf * block**2 + 2 * cf**2 * block)

# (block, cf) pairs all giving CR = 4.
CONFIGS = ((4, 2), (8, 4), (16, 8))
RES = 64


def test_ablation_blocksize(benchmark):
    rng = np.random.default_rng(0)
    batch = np.stack(
        [correlated_field((RES, RES), rng, beta=2.5) for _ in range(16)]
    )[:, None]
    comp8 = DCTChopCompressor(RES, cf=4, block=8)
    benchmark(lambda: comp8.roundtrip(batch))

    lines = [f"Ablation: block size at fixed CR=4 ({RES}x{RES} correlated fields)"]
    rows = []
    for block, cf in CONFIGS:
        comp = DCTChopCompressor(RES, cf=cf, block=block)
        assert comp.ratio == 4.0
        quality = psnr(batch, comp.roundtrip(batch))
        dense = compression_flops(RES, cf, block)
        structured = blockwise_flops(RES, block, cf)
        rows.append((block, quality, dense, structured))
        lines.append(
            f"  block={block:>2} cf={cf}: PSNR {quality:6.2f} dB, dense "
            f"{dense / 1e6:6.2f} MFLOPs/plane, structured "
            f"{structured / 1e6:6.2f} MFLOPs/plane"
        )
    write_result("ablation_blocksize", "\n".join(lines))

    blocks, qualities, dense, structured = zip(*rows)
    # Dense two-matmul cost is block-size invariant at fixed ratio...
    assert dense[0] == dense[1] == dense[2]
    # ...but a structure-exploiting kernel pays linearly in block size.
    assert structured[0] < structured[1] < structured[2]
    # Larger blocks compact energy better on smooth data (the quality side).
    assert qualities[0] < qualities[2]
    # The default 8x8 captures most of the quality gain at a fraction of
    # the 16x16 cost — the paper's "appropriate size" claim.
    assert qualities[1] > qualities[0]
    assert (qualities[2] - qualities[1]) < (qualities[1] - qualities[0]) + 3.0
