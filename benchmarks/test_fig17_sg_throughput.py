"""Fig. 17: SG vs DC decompression throughput on the IPU (100x3x32x32).

Paper: SG is 1.5-2.7x slower than DC while improving the ratio by
1.3-1.75x — the ratio/throughput trade is not one-for-one.
"""

import numpy as np

from repro.core import make_compressor
from repro.harness import CF_SWEEP, measure

from benchmarks.conftest import write_result


def test_fig17_sg_vs_dc_throughput(benchmark):
    sg = make_compressor(32, method="sg", cf=4)
    z = np.zeros((100, 3, 16, 10), np.float32)
    benchmark(lambda: sg.decompress(z))

    lines = ["Fig. 17: IPU decompression throughput, SG ('opt') vs DC ('dct'), 32x32"]
    slowdowns, gains = [], []
    for cf in CF_SWEEP:
        dct = measure("ipu", resolution=32, cf=cf, direction="decompress", method="dc")
        opt = measure("ipu", resolution=32, cf=cf, direction="decompress", method="sg")
        assert dct.status == opt.status == "ok"
        slow = opt.seconds / dct.seconds
        gain = opt.ratio / dct.ratio
        slowdowns.append(slow)
        gains.append(gain)
        lines.append(
            f"  cf={cf}: dct {dct.throughput_gbps:6.2f} GB/s (CR {dct.ratio:5.2f})  "
            f"opt {opt.throughput_gbps:6.2f} GB/s (CR {opt.ratio:5.2f})  "
            f"slowdown {slow:4.2f}x, ratio gain {gain:4.2f}x"
        )
    write_result("fig17_sg_throughput", "\n".join(lines))

    # Paper bands.
    assert all(1.2 <= s <= 3.0 for s in slowdowns), slowdowns
    assert max(slowdowns) > 1.5
    assert all(1.3 <= g <= 1.76 for g in gains), gains
    # The trade is not linear: slowdown exceeds ratio gain somewhere.
    assert any(s > g for s, g in zip(slowdowns, gains))

    # SG never compiles on the non-IPU accelerators (reproduced failure).
    for platform in ("cs2", "sn30", "groq"):
        p = measure(platform, resolution=32, cf=4, direction="decompress", method="sg")
        assert p.status == "compile_error"
