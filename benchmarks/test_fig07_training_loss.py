"""Fig. 7: per-epoch training loss across compression ratios, 4 benchmarks.

Each batch is compressed and decompressed before the forward pass; the
series must (a) converge and (b) track the no-compression baseline for
the three SciML tasks while lagging with heavy compression on classify —
the paper's reading of the figure.

Timed kernel: one compress+decompress of a training batch (the per-batch
overhead the compressor adds to the loop).
"""

import numpy as np
import pytest

from repro.core import make_compressor
from repro.harness import BENCHMARKS, format_series

from benchmarks.conftest import CFS, SCALE, write_result


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig7_training_loss(benchmark, studies, name):
    spec = studies.spec(name)
    comp = make_compressor(spec.resolution, cf=max(CFS))
    batch = np.zeros((spec.batch_size, *spec.sample_shape), dtype=np.float32)
    benchmark(lambda: comp.roundtrip(batch))

    study = studies.study(name)
    series = {label: h.train_loss for label, h in study.items()}
    write_result(
        f"fig07_train_loss_{name}",
        format_series(series, f"Fig. 7 ({name}, scale={SCALE}): training loss per epoch"),
    )

    base = study["base"].train_loss
    # Training converges: final loss below first-epoch loss.
    assert base[-1] < base[0]
    for label, hist in study.items():
        assert np.isfinite(hist.train_loss).all(), f"NaN loss in series {label}"
        # Every compressed run still converges from its starting point.
        assert hist.train_loss[-1] < hist.train_loss[0] * 1.1

    if name != "classify":
        # SciML tasks: compressed training loss closely follows baseline.
        for label, hist in study.items():
            if label == "base":
                continue
            assert hist.train_loss[-1] < base[-1] * 3 + 0.05
