"""Ablation: DCT-II vs the ZFP block transform as the decorrelator.

The paper's future work proposes swapping DCT-II for the ZFP block
transform "especially as compression targets change" toward general
scientific floating-point data.  Both transforms run through the same
chop pipeline (4x4 blocks, keep the upper-left corner); we compare
reconstruction quality on image-like vs scientific-field-like data.
"""

import numpy as np

from repro.baselines.zfp import _T as ZFP_TRANSFORM
from repro.core import DCTChopCompressor, dct_matrix, psnr
from repro.data.synthetic import correlated_field, lattice_pattern

from benchmarks.conftest import write_result

RES = 64
BLOCK = 4


def _datasets():
    rng = np.random.default_rng(0)
    image_like = np.stack(
        [lattice_pattern((RES, RES), rng) + 0.3 * correlated_field((RES, RES), rng, 2.0)
         for _ in range(8)]
    )[:, None]
    field_like = np.stack(
        [correlated_field((RES, RES), rng, beta=3.0) for _ in range(8)]
    )[:, None]
    return {"image-like": image_like, "field-like": field_like}


def test_ablation_transform(benchmark):
    data = _datasets()
    zfp_t = ZFP_TRANSFORM.astype(np.float32)
    comp = DCTChopCompressor(RES, cf=2, block=BLOCK, transform=zfp_t)
    benchmark(lambda: comp.roundtrip(data["field-like"]))

    lines = [f"Ablation: DCT-II vs ZFP block transform ({BLOCK}x{BLOCK} blocks, CR=4)"]
    results = {}
    for name, batch in data.items():
        dct_comp = DCTChopCompressor(RES, cf=2, block=BLOCK)
        zfp_comp = DCTChopCompressor(RES, cf=2, block=BLOCK, transform=zfp_t)
        q_dct = psnr(batch, dct_comp.roundtrip(batch))
        q_zfp = psnr(batch, zfp_comp.roundtrip(batch))
        results[name] = (q_dct, q_zfp)
        lines.append(f"  {name:>11}: dct {q_dct:6.2f} dB   zfp-lift {q_zfp:6.2f} dB")
    lines.append("  (the lifted transform trades a little quality for "
                 "integer-friendly arithmetic)")
    write_result("ablation_transform", "\n".join(lines))

    for q_dct, q_zfp in results.values():
        assert np.isfinite(q_dct) and np.isfinite(q_zfp)
        # The two decorrelators are in the same quality class (within 6 dB).
        assert abs(q_dct - q_zfp) < 6.0
    # Both transforms do far better on smooth fields than a no-transform
    # chop would: sanity-check energy compaction is actually happening.
    identity = np.eye(BLOCK, dtype=np.float32)
    raw_chop = DCTChopCompressor(RES, cf=2, block=BLOCK, transform=identity)
    q_raw = psnr(data["field-like"], raw_chop.roundtrip(data["field-like"]))
    assert results["field-like"][0] > q_raw + 3.0
    assert results["field-like"][1] > q_raw + 3.0
