"""Extension: the end-to-end storage use case.

The paper's motivation table (Table 2) is about dataset *footprint*;
this bench measures the whole pipeline: dataset -> DCZ containers ->
decompress-on-access -> training loop, reporting achieved at-rest ratios
per method and the per-sample decode kernel time.
"""

import numpy as np

from repro.data import DataLoader, SyntheticCIFAR10
from repro.data.compressed import CompressedDataset

from benchmarks.conftest import write_result


def test_ext_storage_pipeline(benchmark):
    base = SyntheticCIFAR10(n=32, resolution=32, seed=0)
    lines = ["Extension: compressed-at-rest dataset storage (32 CIFAR-like samples)"]
    ratios = {}
    for method, cf in (("dc", 2), ("dc", 4), ("sg", 2), ("sg", 4)):
        cds = CompressedDataset(base, cf=cf, method=method)
        ratios[(method, cf)] = cds.storage_ratio
        lines.append(
            f"  {method} cf={cf}: nominal {cds.compressor.ratio:5.2f}x, "
            f"achieved at-rest {cds.storage_ratio:5.2f}x"
        )
    write_result("ext_storage_pipeline", "\n".join(lines))

    cds = CompressedDataset(base, cf=4)
    benchmark(lambda: cds[7])  # decompress-on-access kernel

    # Achieved ratios track the nominal ones minus header overhead.
    assert 10.0 < ratios[("dc", 2)] <= 16.0
    assert 3.5 < ratios[("dc", 4)] <= 4.0
    # SG stores strictly less than DC at equal CF.
    assert ratios[("sg", 2)] > ratios[("dc", 2)]
    assert ratios[("sg", 4)] > ratios[("dc", 4)]

    # Decoded batches flow straight into a loader.
    x, y = next(iter(DataLoader(cds, 8)))
    assert x.shape == (8, 3, 32, 32)
