"""Fig. 15: partial-serialization (s=2) decompression throughput at 512x512.

Paper: with s=2, 512x512 decompression runs on SN30 and IPU (which fail /
struggle otherwise) at only a 2.5-3.8x (SN30) / 2.6-3.7x (IPU) slowdown
relative to the 256x256 non-serialized runs — better than the naive 4x —
and on the IPU non-serialized 512 is only 1-8% faster than s=2.
"""

import numpy as np

from repro.core import make_compressor
from repro.harness import CF_SWEEP, measure

from benchmarks.conftest import write_result


def test_fig15_partial_serialization(benchmark):
    ps = make_compressor(512, method="ps", cf=4, s=2)
    y = np.zeros((4, 3, 256, 256), np.float32)
    benchmark(lambda: ps.decompress(y))

    lines = ["Fig. 15: PS s=2 decompression throughput, 100x3x512x512"]
    slowdowns = {}
    for platform in ("sn30", "ipu"):
        for cf in reversed(CF_SWEEP):  # paper plots CF=7..2 left to right
            p512 = measure(
                platform, resolution=512, cf=cf, direction="decompress", method="ps", s=2
            )
            p256 = measure(platform, resolution=256, cf=cf, direction="decompress")
            assert p512.status == "ok", f"PS must compile on {platform}"
            slow = p512.seconds / p256.seconds
            slowdowns[(platform, cf)] = slow
            lines.append(
                f"  {platform} cf={cf} ratio={p512.ratio:5.2f} "
                f"throughput={p512.throughput_gbps:6.2f} GB/s "
                f"(slowdown vs 256 no-ser: {slow:4.2f}x)"
            )
    write_result("fig15_partial_serialization", "\n".join(lines))

    # Paper band: 2.5-3.8x (SN30), 2.6-3.7x (IPU); allow a little slack.
    for (platform, cf), slow in slowdowns.items():
        assert 2.0 < slow < 4.05, f"{platform} cf={cf}: {slow}"

    # IPU can also run 512 *without* serialization; no-serialization is
    # only marginally (1-8%) faster than s=2.
    for cf in (2, 4, 7):
        noser = measure("ipu", resolution=512, cf=cf, direction="decompress")
        ser = measure("ipu", resolution=512, cf=cf, direction="decompress", method="ps", s=2)
        assert noser.status == "ok"
        advantage = ser.seconds / noser.seconds
        assert 1.0 <= advantage < 1.15

    # SN30 still cannot compile 512 without serialization.
    assert measure("sn30", resolution=512, cf=4, direction="decompress").status == "compile_error"
