"""Extension: multi-device scaling ("rely on scalability to outperform GPU").

Quantifies the paper's closing comparison: how many GroqChips / IPUs does
it take to overtake a single A100 at 256x256, cf=4 compression, and what
does a standard deployment node deliver.
"""

from repro.accel.multichip import NODE_SIZES, devices_to_match, estimate_multichip
from repro.harness import measure

from benchmarks.conftest import write_result

BATCH = 128  # shards evenly across 1..64 devices
PAYLOAD = BATCH * 3 * 256 * 256 * 4


def test_ext_multichip_scaling(benchmark):
    benchmark(
        lambda: estimate_multichip("ipu", n_devices=4, resolution=256, cf=4, batch=BATCH)
    )

    a100 = measure("a100", resolution=256, cf=4, direction="compress", batch=BATCH)
    lines = [
        "Extension: multi-device compression scaling at 256x256, cf=4",
        f"  A100 single-GPU reference: {a100.throughput_gbps:5.2f} GB/s",
    ]
    node_results = {}
    for platform in ("groq", "ipu"):
        for n in sorted({1, 2, 4, 8, NODE_SIZES[platform]}):
            est = estimate_multichip(
                platform, n_devices=n, resolution=256, cf=4, batch=BATCH
            )
            if est.status != "ok":
                continue
            gbps = est.throughput_gbps(PAYLOAD)
            node_results[(platform, n)] = gbps
            lines.append(f"  {platform} x{n:>2}: {gbps:6.2f} GB/s")
        crossover = devices_to_match(platform, a100.throughput_gbps, batch=BATCH)
        lines.append(
            f"  -> {platform} needs {crossover} device(s) to match the A100"
        )
        node_results[(platform, "crossover")] = crossover
    write_result("ext_multichip", "\n".join(lines))

    # Scaling is effective: each doubling helps.
    assert node_results[("ipu", 4)] > node_results[("ipu", 2)] > node_results[("ipu", 1)]
    # The paper's claim, quantified: a deployment node of either platform
    # beats the single A100, while a single chip does not.
    assert node_results[("ipu", 1)] < a100.throughput_gbps
    assert node_results[("groq", 1)] < a100.throughput_gbps
    assert node_results[("ipu", NODE_SIZES["ipu"])] > a100.throughput_gbps
    ipu_cross = node_results[("ipu", "crossover")]
    assert ipu_cross is not None and ipu_cross <= NODE_SIZES["ipu"]
    groq_cross = node_results[("groq", "crossover")]
    assert groq_cross is not None
