"""Fig. 16: scatter/gather (SG) accuracy vs DCT+Chop and baseline.

Paper: on classify SG drops 1-2% below DC at equal CF; on em_denoise SG
tracks or slightly beats DC (both can improve on the baseline).  CF in
{2, 7} as in the figure.
"""

import numpy as np
import pytest

from repro.core import make_compressor
from repro.harness import format_series
from repro.harness.accuracy import run_benchmark

from benchmarks.conftest import EPOCHS, SCALE, write_result

SG_CFS = (2, 7)


@pytest.mark.parametrize("name", ["classify", "em_denoise"])
def test_fig16_sg_accuracy(benchmark, studies, name):
    spec = studies.spec(name)
    sg = make_compressor(spec.resolution, method="sg", cf=7)
    batch = np.zeros((spec.batch_size, *spec.sample_shape), dtype=np.float32)
    benchmark(lambda: sg.roundtrip(batch))

    study = studies.study(name)
    base = study["base"]
    use_acc = spec.classification
    base_vals = base.test_accuracy if use_acc else base.test_loss

    def pct(vals):
        return [100.0 * (v - b) / abs(b) for v, b in zip(vals, base_vals)]

    train_series = {"base": base.train_loss}
    delta_series = {}
    sg_final = {}
    for cf in SG_CFS:
        comp = make_compressor(spec.resolution, method="sg", cf=cf)
        hist = run_benchmark(spec, comp, seed=0, epochs=EPOCHS)
        label = f"sg {comp.ratio:.2f}"
        train_series[label] = hist.train_loss
        vals = hist.test_accuracy if use_acc else hist.test_loss
        delta_series[label] = pct(vals)
        sg_final[cf] = vals[-1]

    metric = "test accuracy" if use_acc else "test loss"
    write_result(
        f"fig16_sg_{name}",
        format_series(train_series, f"Fig. 16 ({name}, scale={SCALE}): SG training loss")
        + "\n\n"
        + format_series(
            delta_series, f"Fig. 16 ({name}): SG {metric} % diff vs baseline", fmt="{:9.2f}"
        ),
    )

    for label, vals in delta_series.items():
        assert np.isfinite(vals).all(), label
    for label, losses in train_series.items():
        # Every run converges.
        assert losses[-1] < losses[0] * 1.1, label

    if name == "classify":
        # SG at CF=2 retains only 3 of 64 coefficients: must hurt accuracy
        # more than SG at CF=7, and both trail the baseline.
        assert sg_final[2] <= sg_final[7] + 1e-6
        assert sg_final[7] <= base_vals[-1] + 0.02
