"""Ablation: square chop (DC) vs zig-zag triangle retention (SG) as a
rate-distortion frontier.

For each method, sweep CF and record (compression ratio, PSNR); the
triangle variant buys strictly more ratio at the same CF, and per
*retained coefficient* the triangle keeps the more useful (low-sequency)
ones — its frontier should not be dominated by the square's.
"""

import numpy as np

from repro.core import DCTChopCompressor, ScatterGatherCompressor, psnr
from repro.data import EMGrapheneDataset

from benchmarks.conftest import write_result


def _batch(n=16, res=64):
    ds = EMGrapheneDataset(n=n, resolution=res, seed=0)
    return np.stack([ds[i][0] for i in range(n)])


def test_ablation_chop_vs_triangle(benchmark):
    batch = _batch()
    sg = ScatterGatherCompressor(64, cf=4)
    benchmark(lambda: sg.roundtrip(batch))

    lines = ["Ablation: rate-distortion of square chop vs triangle retention (em data)"]
    frontier = {}
    for method, cls in (("dc", DCTChopCompressor), ("sg", ScatterGatherCompressor)):
        pts = []
        for cf in range(2, 8):
            comp = cls(64, cf=cf)
            quality = psnr(batch, comp.roundtrip(batch))
            pts.append((comp.ratio, quality))
            lines.append(f"  {method} cf={cf}: CR {comp.ratio:6.2f}, PSNR {quality:6.2f} dB")
        frontier[method] = pts
    write_result("ablation_chop_vs_triangle", "\n".join(lines))

    # Quality is monotone in CF for both methods.
    for pts in frontier.values():
        quality = [q for _, q in pts]
        assert all(a <= b + 1e-9 for a, b in zip(quality, quality[1:]))
    # At equal CF the triangle gives strictly more ratio, slightly less PSNR.
    for (dc_r, dc_q), (sg_r, sg_q) in zip(frontier["dc"], frontier["sg"]):
        assert sg_r > dc_r
        assert sg_q <= dc_q + 1e-6
    # At ~matched ratio (DC cf=5 -> CR 2.56 vs SG cf=7 -> CR 2.29) the
    # triangle's low-sequency selection is competitive: within a few dB.
    dc_cf5 = frontier["dc"][3][1]
    sg_cf7 = frontier["sg"][5][1]
    assert abs(dc_cf5 - sg_cf7) < 5.0
