"""Shared infrastructure for the figure/table regeneration benches.

Every bench both (a) times a representative kernel via pytest-benchmark
and (b) regenerates the corresponding paper artifact, printing it and
writing it under ``results/``.  Accuracy studies are expensive, so they
are computed once per session and shared across the Fig. 7/8/9/16 benches.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — "tiny" (default) / "small" / "paper".
* ``REPRO_BENCH_EPOCHS`` — override epochs per training run.
* ``REPRO_BENCH_CFS``    — comma-separated chop factors (default "2,4,6").
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import compression_study, get_benchmark

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")
EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "4"))
CFS = tuple(int(c) for c in os.environ.get("REPRO_BENCH_CFS", "2,4,6").split(","))


def write_result(name: str, text: str) -> Path:
    """Persist a figure/table rendering under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


class StudyCache:
    """Session-wide cache of accuracy studies keyed by benchmark name."""

    def __init__(self) -> None:
        self._studies: dict[str, dict] = {}

    def study(self, name: str):
        if name not in self._studies:
            spec = get_benchmark(name, SCALE)
            self._studies[name] = compression_study(
                spec, cfs=CFS, epochs=EPOCHS, seed=0
            )
        return self._studies[name]

    def spec(self, name: str):
        return get_benchmark(name, SCALE)


@pytest.fixture(scope="session")
def studies() -> StudyCache:
    return StudyCache()
